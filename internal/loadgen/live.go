package loadgen

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"idea/internal/core"
	"idea/internal/detect"
	"idea/internal/env"
	"idea/internal/id"
	"idea/internal/resolve"
	"idea/internal/telemetry"
)

// Injector runs a function inside a node's shard-0 event loop, serialized
// with message handling — transport.Node and idea.LiveNode both satisfy
// it.
type Injector interface {
	Inject(fn func(env.Env))
}

// FileInjector is optionally implemented by injectors whose node runs a
// sharded execution model: InjectFile runs fn in the serialization domain
// owning file, which is required for per-file operations on multi-shard
// nodes (and equivalent to Inject on single-shard ones). transport.Node
// and idea.LiveNode implement it.
type FileInjector interface {
	InjectFile(file id.FileID, fn func(env.Env))
}

// writeKey correlates a write with its asynchronous detection verdict.
// Detect tokens are only unique per (node, file shard), so the key pairs
// the file with the token.
type writeKey struct {
	file  id.FileID
	token int64
}

// liveRun is the shared state of one RunLive invocation. Write latencies
// are measured wall-clock from issue to the asynchronous detection
// verdict, correlated by (file, token) through the node's OnLevel hook.
type liveRun struct {
	cfg     Config
	n       *core.Node
	inj     Injector
	injFile func(id.FileID, func(env.Env))
	rec     *recorder
	stopped atomic.Bool
	// halted is set when Config.Stop closes: issuers wind down early.
	halted atomic.Bool

	// measureFrom gates recording: operations issued before it (the
	// ramp-up / worker-stagger warm-up window) are excluded from counts
	// and percentiles, so the report reflects steady state rather than
	// the deliberately underdriven warm-up.
	measureFrom time.Time

	mu      sync.Mutex
	waiters map[writeKey]writeWait
	// early holds verdicts that arrived before the issuing closure
	// could register its waiter (a lone writer's probe finalizes
	// synchronously inside WriteTracked).
	early map[writeKey]struct{}
	// fileOps counts measured completed ops per file, the raw material
	// of idea-load's per-shard throughput split.
	fileOps map[id.FileID]int64
	// timeline buckets measured completed ops per second of the
	// measurement window — the churn dip/recovery signal.
	timeline []int64
	// killOffsets records when (seconds into the measured window) each
	// churn kill fired.
	killOffsets []int

	// prevLevel/prevOutcome are the node's original hooks, restored
	// when the run ends so a long-lived embedder does not keep feeding
	// the run's maps forever.
	prevLevel   core.LevelFunc
	prevOutcome core.OutcomeFunc
}

type writeWait struct {
	start time.Time
	done  chan time.Duration // nil for open-loop writes
}

// RunLive drives the workload against a live node: ops are injected into
// the node's event loops — per-file ops into the owning shard's loop when
// the injector supports it — so the driver coexists with real protocol
// traffic. Closed-loop mode (Rate == 0) runs Workers issuers that each
// wait for their write's detection verdict before continuing; open-loop
// mode paces at Rate ops/sec (ramping over RampUp) without waiting.
// Operations issued during the RampUp window warm the system but are
// excluded from the report's counts and percentiles. Passing the node's
// own registry as reg exposes the run's latency histograms on the node's
// /metrics surface; nil keeps them private.
func RunLive(cfg Config, n *core.Node, inj Injector, reg *telemetry.Registry) *Report {
	cfg = cfg.withDefaults()
	lr := &liveRun{
		cfg:     cfg,
		n:       n,
		inj:     inj,
		rec:     newRecorder(reg),
		waiters: make(map[writeKey]writeWait),
		early:   make(map[writeKey]struct{}),
		fileOps: make(map[id.FileID]int64),
	}
	if fi, ok := inj.(FileInjector); ok {
		lr.injFile = fi.InjectFile
	} else {
		lr.injFile = func(_ id.FileID, fn func(env.Env)) { inj.Inject(fn) }
	}
	lr.installHooks()

	start := time.Now()
	lr.measureFrom = start.Add(cfg.RampUp)
	deadline := start.Add(cfg.Duration)
	runDone := make(chan struct{})
	if cfg.Stop != nil {
		go func() {
			select {
			case <-cfg.Stop:
				lr.halted.Store(true)
			case <-runDone:
			}
		}()
	}
	var wg sync.WaitGroup
	if cfg.Rate > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lr.openLoop(start, deadline)
		}()
	} else {
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lr.closedWorker(w, deadline)
			}(w)
		}
	}
	if cfg.Churn != nil && cfg.ChurnEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lr.churnLoop(deadline)
		}()
	}
	wg.Wait()
	close(runDone)
	lr.drain()
	lr.stopped.Store(true)
	lr.uninstallHooks()
	measured := cfg.Duration - cfg.RampUp
	if measured <= 0 {
		measured = cfg.Duration
	}
	if lr.halted.Load() {
		// An early stop shortens the window the rates are computed over.
		if actual := time.Since(lr.measureFrom); actual > 0 && actual < measured {
			measured = actual
		}
	}
	rep := lr.rec.report(measured)
	lr.mu.Lock()
	rep.FileOps = make(map[id.FileID]int64, len(lr.fileOps))
	for f, c := range lr.fileOps {
		rep.FileOps[f] = c
	}
	rep.Timeline = append([]int64(nil), lr.timeline...)
	kills := append([]int(nil), lr.killOffsets...)
	lr.mu.Unlock()
	if len(kills) > 0 {
		rep.Churn = ChurnSummary(rep.Timeline, kills)
	}
	return rep
}

// halt reports whether the run was stopped early.
func (lr *liveRun) halt() bool { return lr.halted.Load() }

// churnLoop kills a member every ChurnEvery inside the measured window
// and restarts it half a period later.
func (lr *liveRun) churnLoop(deadline time.Time) {
	round := 0
	next := lr.measureFrom.Add(lr.cfg.ChurnEvery)
	for next.Add(lr.cfg.ChurnEvery / 2).Before(deadline) {
		if !lr.sleepUntil(next, deadline) {
			return
		}
		restart := lr.cfg.Churn(round)
		lr.mu.Lock()
		lr.killOffsets = append(lr.killOffsets, int(time.Since(lr.measureFrom)/time.Second))
		lr.mu.Unlock()
		round++
		lr.sleepUntil(next.Add(lr.cfg.ChurnEvery/2), deadline)
		if restart != nil {
			restart()
		}
		next = next.Add(lr.cfg.ChurnEvery)
	}
}

// sleepUntil waits for t, waking early on halt/deadline; it reports
// whether t was reached before either.
func (lr *liveRun) sleepUntil(t, deadline time.Time) bool {
	for {
		now := time.Now()
		if !now.Before(t) {
			return true
		}
		if lr.halt() || !now.Before(deadline) {
			return false
		}
		d := t.Sub(now)
		if d > 50*time.Millisecond {
			d = 50 * time.Millisecond
		}
		time.Sleep(d)
	}
}

// ChurnSummary derives steady/dip/recovery from a per-second ops
// timeline and the disturbance instants (seconds into the window when a
// member was killed, a flash crowd landed, or any other scripted fault
// fired). RunLive applies it to its own churn kills; the scenario-plan
// runner applies it to emulated timelines with fault offsets.
func ChurnSummary(timeline []int64, kills []int) *ChurnReport {
	cr := &ChurnReport{Rounds: len(kills)}
	if len(timeline) == 0 {
		return cr
	}
	// Steady state: the median per-second rate over the full window (the
	// dips pull the mean, the median shrugs them off).
	sorted := append([]int64(nil), timeline...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cr.SteadyOpsPerSec = float64(sorted[len(sorted)/2])
	cr.DipOpsPerSec = cr.SteadyOpsPerSec
	threshold := 0.9 * cr.SteadyOpsPerSec
	for _, k := range kills {
		if k >= len(timeline) {
			continue
		}
		// The kill's blast radius ends at the next kill (or window end).
		end := len(timeline)
		for _, k2 := range kills {
			if k2 > k && k2 < end {
				end = k2
			}
		}
		// Find the worst second, then the first at-threshold second
		// after it. A kill the workload rode through without dipping
		// below threshold counts as zero recovery time.
		dipIdx := k
		for i := k; i < end; i++ {
			if timeline[i] < timeline[dipIdx] {
				dipIdx = i
			}
		}
		if float64(timeline[dipIdx]) < cr.DipOpsPerSec {
			cr.DipOpsPerSec = float64(timeline[dipIdx])
		}
		if float64(timeline[dipIdx]) >= threshold {
			continue
		}
		rec := float64(end - k) // pessimistic: never recovered in window
		for i := dipIdx + 1; i < end; i++ {
			if float64(timeline[i]) >= threshold {
				rec = float64(i - k)
				break
			}
		}
		if rec > cr.RecoverySeconds {
			cr.RecoverySeconds = rec
		}
	}
	return cr
}

// measured reports whether an op issued at start falls inside the
// measurement window (after ramp-up).
func (lr *liveRun) measured(start time.Time) bool {
	return !start.Before(lr.measureFrom) && !lr.stopped.Load()
}

// record observes one completed measured op, charges its file, and
// buckets it on the per-second timeline.
func (lr *liveRun) record(op Op, file id.FileID, d time.Duration) {
	lr.rec.observe(op, d)
	lr.mu.Lock()
	lr.fileOps[file]++
	if b := int(time.Since(lr.measureFrom) / time.Second); b >= 0 && b < 1<<20 {
		for len(lr.timeline) <= b {
			lr.timeline = append(lr.timeline, 0)
		}
		lr.timeline[b]++
	}
	lr.mu.Unlock()
}

// installHooks chains onto the node's OnLevel/OnOutcome hooks. The hook
// slots are atomically swappable, so installation needs no event-loop
// round trip.
func (lr *liveRun) installHooks() {
	lr.prevLevel = lr.n.SetOnLevel(func(e env.Env, f id.FileID, res detect.Result) {
		if lr.prevLevel != nil {
			lr.prevLevel(e, f, res)
		}
		lr.completeWrite(writeKey{file: f, token: res.Token})
	})
	lr.prevOutcome = lr.n.SetOnOutcome(func(e env.Env, o resolve.Outcome) {
		if lr.prevOutcome != nil {
			lr.prevOutcome(e, o)
		}
		// Resolve latency is the initiator-side session duration.
		if o.Active && !o.Aborted && !lr.stopped.Load() {
			lr.rec.observe(OpResolve, o.Phase1+o.Phase2)
		}
	})
}

// uninstallHooks restores the node's original hooks so the run's
// correlation maps stop accumulating once the report is cut.
func (lr *liveRun) uninstallHooks() {
	lr.n.SetOnLevel(lr.prevLevel)
	lr.n.SetOnOutcome(lr.prevOutcome)
}

func (lr *liveRun) completeWrite(k writeKey) {
	lr.mu.Lock()
	w, ok := lr.waiters[k]
	if !ok {
		// Verdict beat the registration (synchronous finalize); leave a
		// marker so registerWrite completes immediately. Skip once the
		// run is over so foreign detections cannot grow the map.
		if !lr.stopped.Load() {
			lr.early[k] = struct{}{}
		}
		lr.mu.Unlock()
		return
	}
	delete(lr.waiters, k)
	lr.mu.Unlock()
	el := time.Since(w.start)
	if lr.measured(w.start) {
		lr.record(OpWrite, k.file, el)
	}
	if w.done != nil {
		w.done <- el
	}
}

func (lr *liveRun) registerWrite(k writeKey, start time.Time, done chan time.Duration) {
	lr.mu.Lock()
	if _, ok := lr.early[k]; ok {
		delete(lr.early, k)
		lr.mu.Unlock()
		el := time.Since(start)
		if lr.measured(start) {
			lr.record(OpWrite, k.file, el)
		}
		if done != nil {
			done <- el
		}
		return
	}
	lr.waiters[k] = writeWait{start: start, done: done}
	lr.mu.Unlock()
}

// issueWrite injects one write into the file's serialization domain; done
// non-nil makes it a closed-loop op.
func (lr *liveRun) issueWrite(file id.FileID, done chan time.Duration) {
	payload := make([]byte, lr.cfg.PayloadBytes)
	start := time.Now()
	lr.injFile(file, func(e env.Env) {
		_, token := lr.n.WriteTracked(e, file, "load", payload, float64(len(payload)))
		lr.registerWrite(writeKey{file: file, token: token}, start, done)
	})
}

// issueSync injects a local op (read/hint/resolve dispatch) into the
// file's domain and waits for its execution, recording the
// issue-to-execution latency for read and hint. Resolve latency is
// recorded separately via OnOutcome.
func (lr *liveRun) issueSync(op Op, file id.FileID, wait bool) {
	start := time.Now()
	ran := make(chan struct{})
	lr.injFile(file, func(e env.Env) {
		switch op {
		case OpRead:
			lr.n.Read(file)
		case OpHint:
			lr.n.SetHint(file, lr.cfg.HintLevel)
		case OpResolve:
			lr.n.DemandActiveResolution(e, file)
		}
		if op != OpResolve && lr.measured(start) {
			lr.record(op, file, time.Since(start))
		}
		close(ran)
	})
	if wait {
		select {
		case <-ran:
		case <-time.After(lr.cfg.OpTimeout):
		}
	}
}

func (lr *liveRun) closedWorker(w int, deadline time.Time) {
	if lr.cfg.RampUp > 0 && lr.cfg.Workers > 1 {
		// Stagger worker starts across the ramp window.
		time.Sleep(time.Duration(w) * lr.cfg.RampUp / time.Duration(lr.cfg.Workers))
	}
	rng := rand.New(rand.NewSource(lr.cfg.Seed + int64(w)*7919))
	fp := newFilePicker(rng, lr.cfg.Files, lr.cfg.ZipfSkew)
	for time.Now().Before(deadline) && !lr.halt() {
		op := lr.cfg.Mix.Pick(rng)
		file := fp.pick()
		if op == OpWrite {
			done := make(chan time.Duration, 1)
			lr.issueWrite(file, done)
			select {
			case <-done:
			case <-time.After(lr.cfg.OpTimeout):
				lr.rec.timeouts.Inc()
				lr.forgetWaiters()
			}
			continue
		}
		lr.issueSync(op, file, true)
	}
}

// forgetWaiters drops timed-out write waiters so a late verdict does not
// feed a stale channel.
func (lr *liveRun) forgetWaiters() {
	lr.mu.Lock()
	for k, w := range lr.waiters {
		if time.Since(w.start) > lr.cfg.OpTimeout {
			delete(lr.waiters, k)
		}
	}
	lr.mu.Unlock()
}

func (lr *liveRun) openLoop(start, deadline time.Time) {
	rng := rand.New(rand.NewSource(lr.cfg.Seed))
	fp := newFilePicker(rng, lr.cfg.Files, lr.cfg.ZipfSkew)
	// Pace against an absolute schedule (next, not a fixed per-op
	// sleep) so issue overhead does not make the achieved rate
	// systematically undershoot the target.
	next := start
	for {
		now := time.Now()
		if !now.Before(deadline) || lr.halt() {
			return
		}
		if now.Before(next) {
			time.Sleep(next.Sub(now))
			continue
		}
		rate := lr.cfg.Rate
		if lr.cfg.RampUp > 0 && now.Sub(start) < lr.cfg.RampUp {
			frac := float64(now.Sub(start)) / float64(lr.cfg.RampUp)
			if frac < 0.05 {
				frac = 0.05
			}
			rate = lr.cfg.Rate * frac
		}
		op := lr.cfg.Mix.Pick(rng)
		file := fp.pick()
		if op == OpWrite {
			lr.issueWrite(file, nil)
		} else {
			lr.issueSync(op, file, false)
		}
		next = next.Add(time.Duration(float64(time.Second) / rate))
		// Routine sleep overshoot self-corrects by issuing the backlog
		// immediately; only a real stall (>1s behind) resets the
		// schedule so it cannot turn into an unbounded burst.
		if behind := time.Now(); next.Before(behind.Add(-time.Second)) {
			next = behind
		}
	}
}

// drain waits (bounded by OpTimeout) for outstanding write verdicts so a
// run's tail latencies are not silently discarded.
func (lr *liveRun) drain() {
	deadline := time.Now().Add(lr.cfg.OpTimeout)
	for time.Now().Before(deadline) {
		lr.mu.Lock()
		n := len(lr.waiters)
		lr.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
