// Package integration exercises the full IDEA stack the way the paper's
// PlanetLab deployment did: 40 nodes, dynamic RanSub overlay election,
// gossip bottom layer, both applications, failure injection — everything
// on at once.
package integration

import (
	"testing"
	"time"

	"idea/internal/apps/whiteboard"
	"idea/internal/core"
	"idea/internal/env"
	"idea/internal/gossip"
	"idea/internal/id"
	"idea/internal/ransub"
	"idea/internal/simnet"
	"idea/internal/vv"
)

const board = id.FileID("board")

type deployment struct {
	c     *simnet.Cluster
	nodes map[id.NodeID]*core.Node
	all   []id.NodeID
}

// deploy builds an n-node full-stack cluster: dynamic overlay, gossip on.
func deploy(t *testing.T, n int, seed int64, loss float64) *deployment {
	t.Helper()
	all := make([]id.NodeID, n)
	for i := range all {
		all[i] = id.NodeID(i + 1)
	}
	c := simnet.New(simnet.Config{Seed: seed, Latency: simnet.WAN{}, Loss: loss})
	nodes := make(map[id.NodeID]*core.Node, n)
	for _, nid := range all {
		nd := core.NewNode(nid, core.Options{
			All:    all,
			Ransub: ransub.Config{Epoch: 5 * time.Second},
			Gossip: gossip.Config{Interval: 10 * time.Second, Fanout: 2, TTL: 3},
		})
		nodes[nid] = nd
		c.Add(nid, nd)
	}
	c.Start()
	return &deployment{c: c, nodes: nodes, all: all}
}

func (d *deployment) write(at time.Duration, nid id.NodeID) {
	d.c.CallAt(at, nid, func(e env.Env) {
		d.nodes[nid].Write(e, board, "draw", []byte("op"), 0)
	})
}

func TestFullStackDynamicOverlayAndResolution(t *testing.T) {
	d := deploy(t, 40, 201, 0)
	writers := []id.NodeID{3, 11, 27, 35}

	// Warm-up epoch: writers update; RanSub elects them.
	for s := 2 * time.Second; s <= 60*time.Second; s += 5 * time.Second {
		for _, w := range writers {
			d.write(s, w)
		}
	}
	// Check while the writers are still warm: temperatures decay by
	// design once updates stop (recency dominates, §4.1).
	d.c.RunFor(62 * time.Second)

	// Every writer's dynamic view agrees on the top layer.
	for _, w := range writers {
		top := d.nodes[w].Membership().Top(board)
		if len(top) != len(writers) {
			t.Fatalf("writer %v sees top layer %v, want %v", w, top, writers)
		}
	}

	// Now demand resolution and verify writers converge.
	d.c.CallAt(d.c.Elapsed()+time.Second, writers[0], func(e env.Env) {
		d.nodes[writers[0]].DemandActiveResolution(e, board)
	})
	d.c.RunFor(10 * time.Second)
	ref := d.nodes[writers[0]].Store().Open(board).Vector()
	for _, w := range writers[1:] {
		if vv.Compare(ref, d.nodes[w].Store().Open(board).Vector()) != vv.Equal {
			t.Fatalf("writer %v did not converge", w)
		}
	}
}

func TestFullStackHintUnderLoss(t *testing.T) {
	// 5% message loss: timeouts and retries must keep the protocol live.
	d := deploy(t, 16, 203, 0.05)
	writers := []id.NodeID{1, 2, 3, 4}
	for _, w := range writers {
		w := w
		d.c.CallAt(0, w, func(e env.Env) {
			if err := d.nodes[w].SetHint(board, 0.9); err != nil {
				t.Error(err)
			}
		})
	}
	for s := 2 * time.Second; s <= 120*time.Second; s += 5 * time.Second {
		for _, w := range writers {
			d.write(s, w)
		}
	}
	d.c.RunFor(140 * time.Second)
	resolved := 0
	for _, w := range writers {
		resolved += d.nodes[w].Resolver().Resolutions
	}
	if resolved == 0 {
		t.Fatal("no resolutions completed under loss")
	}
	if d.c.Stats().Dropped() == 0 {
		t.Fatal("loss model inactive — test is vacuous")
	}
}

func TestFullStackCrashedWriterSkipped(t *testing.T) {
	d := deploy(t, 12, 205, 0)
	writers := []id.NodeID{1, 2, 3, 4}
	for s := 2 * time.Second; s <= 40*time.Second; s += 5 * time.Second {
		for _, w := range writers {
			d.write(s, w)
		}
	}
	// Crash writer 3 while the overlay is still warm (temperatures decay
	// once updates stop, so the resolution must run soon after).
	d.c.RunFor(41 * time.Second)
	for _, n := range d.all {
		if n != 3 {
			d.c.Partition(3, n)
		}
	}
	d.c.CallAt(d.c.Elapsed()+time.Second, 1, func(e env.Env) {
		d.nodes[1].DemandActiveResolution(e, board)
	})
	d.c.RunFor(20 * time.Second)
	// Survivors converge despite the dead member.
	ref := d.nodes[1].Store().Open(board).Vector()
	for _, w := range []id.NodeID{2, 4} {
		if vv.Compare(ref, d.nodes[w].Store().Open(board).Vector()) != vv.Equal {
			t.Fatalf("survivor %v did not converge", w)
		}
	}
}

func TestFullStackTwoIndependentFiles(t *testing.T) {
	// §4.1: different files have different top layers that do not
	// interfere. Two disjoint writer groups on two files.
	d := deploy(t, 20, 207, 0)
	other := id.FileID("tickets")
	groupA := []id.NodeID{1, 2}
	groupB := []id.NodeID{11, 12}
	for s := 2 * time.Second; s <= 60*time.Second; s += 5 * time.Second {
		for _, w := range groupA {
			d.write(s, w)
		}
		for _, w := range groupB {
			w := w
			d.c.CallAt(s, w, func(e env.Env) {
				d.nodes[w].Write(e, other, "book", nil, 0)
			})
		}
	}
	d.c.RunFor(62 * time.Second)
	// Each group's top layer contains exactly its own writers.
	topA := d.nodes[1].Membership().Top(board)
	topB := d.nodes[11].Membership().Top(other)
	if len(topA) != 2 || topA[0] != 1 || topA[1] != 2 {
		t.Fatalf("board top layer = %v", topA)
	}
	if len(topB) != 2 || topB[0] != 11 || topB[1] != 12 {
		t.Fatalf("tickets top layer = %v", topB)
	}
	if d.nodes[1].Membership().IsTop(other, 1) {
		t.Fatal("board writer leaked into tickets top layer")
	}
}

func TestFullStackWhiteboardApplication(t *testing.T) {
	d := deploy(t, 10, 209, 0)
	writers := []id.NodeID{1, 2, 3}
	boards := map[id.NodeID]*whiteboard.Board{}
	for _, w := range writers {
		b, err := whiteboard.New(d.nodes[w], board)
		if err != nil {
			t.Fatal(err)
		}
		boards[w] = b
		w := w
		d.c.CallAt(0, w, func(e env.Env) {
			if err := boards[w].SetTolerance(0.9); err != nil {
				t.Error(err)
			}
		})
	}
	for s := 2 * time.Second; s <= 90*time.Second; s += 5 * time.Second {
		for _, w := range writers {
			w := w
			d.c.CallAt(s, w, func(e env.Env) {
				boards[w].Draw(e, whiteboard.Op{Kind: "draw", X: int(w), Text: "s"})
			})
		}
	}
	d.c.RunFor(110 * time.Second)
	for _, w := range writers {
		if lvl := boards[w].Level(); lvl < 0.85 {
			t.Fatalf("participant %v level %.4f under full stack", w, lvl)
		}
	}
	// Final convergence check after one demanded resolution.
	d.c.CallAt(d.c.Elapsed()+time.Second, 1, func(e env.Env) {
		d.nodes[1].DemandActiveResolution(e, board)
	})
	d.c.RunFor(10 * time.Second)
	ref := d.nodes[1].Store().Open(board).Vector()
	for _, w := range writers[1:] {
		if vv.Compare(ref, d.nodes[w].Store().Open(board).Vector()) != vv.Equal {
			t.Fatalf("participant %v diverged at the end", w)
		}
	}
}
