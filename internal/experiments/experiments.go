// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simnet PlanetLab substitute, plus the ablations
// DESIGN.md calls out. Each experiment is a pure function of its
// parameters and seed, returning a Report with the series/rows the paper
// plots and the scalar headline numbers.
//
// Calibration notes (see DESIGN.md §4 and EXPERIMENTS.md):
//   - the WAN latency model is set so one sequential collect visit costs
//     ≈105 ms, matching Table 2's per-member cost;
//   - the consistency metric is cast with maxima (30, 66, 300) and equal
//     weights so one 5-second round of four-writer conflicts costs
//     ≈1.5 % of the level, reproducing Fig. 7's floors just below the
//     hint (94 %/84 %).
package experiments

import (
	"fmt"
	"strings"
	"time"

	"idea/internal/core"
	"idea/internal/env"
	"idea/internal/id"
	"idea/internal/overlay"
	"idea/internal/quantify"
	"idea/internal/simnet"
	"idea/internal/trace"
	"idea/internal/vv"
)

// SharedFile is the file all paper experiments contend on.
const SharedFile = id.FileID("whiteboard")

// Report is one experiment's output.
type Report struct {
	Name     string
	Rec      *trace.Recorder
	Rendered string // the table/figure text the harness prints
}

// ClusterConfig shapes a paper-style cluster.
type ClusterConfig struct {
	Seed    int64
	Nodes   int // total nodes (paper: 40)
	Writers int // concurrent writers forming the top layer (paper: 4)
	Latency simnet.LatencyModel
	// Gossip enables the bottom-layer sweep (the paper's evaluation ran
	// without the rollback path; default off to match).
	Gossip bool
	// Mutate tweaks per-node options before construction.
	Mutate func(nid id.NodeID, o *core.Options)
}

// Cluster is a ready-to-drive paper cluster.
type Cluster struct {
	C       *simnet.Cluster
	Nodes   map[id.NodeID]*core.Node
	All     []id.NodeID
	Writers []id.NodeID
	Quant   *quantify.Quantifier
}

// CalibratedMaxima are the experiment-wide Formula 1 maxima.
func CalibratedMaxima() (num, ord, stale float64) { return 30, 66, 300 }

// NewCluster builds the paper topology: cfg.Nodes nodes spanning a WAN,
// with the first cfg.Writers node IDs pinned as the shared file's top
// layer (the "after warming up, the four writers form a top layer"
// configuration of §6.1).
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Nodes == 0 {
		cfg.Nodes = 40
	}
	if cfg.Writers == 0 {
		cfg.Writers = 4
	}
	if cfg.Latency == nil {
		cfg.Latency = simnet.WAN{}
	}
	all := make([]id.NodeID, cfg.Nodes)
	for i := range all {
		all[i] = id.NodeID(i + 1)
	}
	writers := all[:cfg.Writers]
	mem := overlay.NewStatic(all, map[id.FileID][]id.NodeID{SharedFile: writers})
	c := simnet.New(simnet.Config{Seed: cfg.Seed, Latency: cfg.Latency})
	nodes := make(map[id.NodeID]*core.Node, cfg.Nodes)
	var quant *quantify.Quantifier
	for _, nid := range all {
		opts := core.Options{
			Membership:    mem,
			All:           all,
			DisableGossip: !cfg.Gossip,
			DisableRansub: true,
		}
		if cfg.Mutate != nil {
			cfg.Mutate(nid, &opts)
		}
		nd := core.NewNode(nid, opts)
		num, ord, stale := CalibratedMaxima()
		if err := nd.SetConsistencyMetric(num, ord, stale, nil); err != nil {
			panic(err)
		}
		nodes[nid] = nd
		if quant == nil {
			quant = nd.Quantifier()
		}
		c.Add(nid, nd)
	}
	c.Start()
	return &Cluster{C: c, Nodes: nodes, All: all, Writers: append([]id.NodeID(nil), writers...), Quant: quant}
}

// Warmup gives every writer a shared first update so the replicas have a
// common consistent prefix (staleness then measures divergence age, not
// time since the epoch).
func (cl *Cluster) Warmup() {
	w0 := cl.Writers[0]
	cl.C.CallAtFile(100*time.Millisecond, w0, SharedFile, func(e env.Env) {
		u := cl.Nodes[w0].Store().Open(SharedFile).WriteLocal(e.Stamp(), "init", nil, 0)
		for _, w := range cl.Writers[1:] {
			cl.Nodes[w].Store().Open(SharedFile).Apply(u)
		}
	})
	cl.C.RunFor(200 * time.Millisecond)
}

// WriteAt schedules a paper-style update by writer w at virtual time at.
func (cl *Cluster) WriteAt(at time.Duration, w id.NodeID) {
	cl.C.CallAtFile(at, w, SharedFile, func(e env.Env) {
		cl.Nodes[w].Write(e, SharedFile, "draw", []byte("op"), 0)
	})
}

// ScheduleUniformWrites makes every writer update the shared file every
// interval through end — the §6.1 workload ("the four nodes start to
// update the same file every 5 seconds").
func (cl *Cluster) ScheduleUniformWrites(interval, end time.Duration) {
	for t := interval; t <= end; t += interval {
		for _, w := range cl.Writers {
			cl.WriteAt(t, w)
		}
	}
}

// SampleLevels computes, omnisciently, each writer's consistency level
// against the reference consistent state (highest-ID replica, the
// paper's choice), returning the worst ("view from the user") and the
// mean ("system average").
func (cl *Cluster) SampleLevels() (worst, avg float64) {
	cands := make(map[id.NodeID]*vv.Vector, len(cl.Writers))
	for _, w := range cl.Writers {
		cands[w] = cl.Nodes[w].Store().Open(SharedFile).Vector()
	}
	_, ref := cl.Quant.RefSel(cands)
	worst = 1.0
	sum := 0.0
	for _, w := range cl.Writers {
		_, level := cl.Quant.Score(cands[w], ref)
		sum += level
		if level < worst {
			worst = level
		}
	}
	return worst, sum / float64(len(cl.Writers))
}

// RunSampling advances the cluster to end, sampling worst/average levels
// into the recorder every sampleEvery (offset by half a period so samples
// fall between write rounds, like the paper's 5-second sampling).
func (cl *Cluster) RunSampling(rec *trace.Recorder, worstName, avgName string, sampleEvery, end time.Duration) {
	for t := sampleEvery / 2; t <= end; t += sampleEvery {
		cl.C.RunUntil(t)
		w, a := cl.SampleLevels()
		rec.Series(worstName).Add(t, w)
		rec.Series(avgName).Add(t, a)
	}
	cl.C.RunUntil(end)
}

// fmtDur renders a duration in milliseconds with 3 decimals, the paper's
// Table 2 style.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3f ms", float64(d)/float64(time.Millisecond))
}

// section renders a report header.
func section(title string) string {
	return fmt.Sprintf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
