package experiments

import (
	"fmt"
	"time"

	"idea/internal/core"
	"idea/internal/env"
	"idea/internal/gossip"
	"idea/internal/id"
	"idea/internal/overlay"
	"idea/internal/quantify"
	"idea/internal/simnet"
	"idea/internal/trace"
)

// RunParallelPhase2 quantifies the §6.2 suggestion that phase 2 can be
// parallelized: sequential phase-2 delay grows linearly with the top
// layer while the parallel variant stays near one round trip.
func RunParallelPhase2(seed int64) Report {
	rec := trace.NewRecorder()
	seq := rec.Series("sequential (ms)")
	par := rec.Series("parallel (ms)")
	rows := make([][]string, 0, 5)
	for _, n := range []int{2, 4, 6, 8, 10} {
		s := RunPhaseBreakdown(PhaseConfig{Seed: seed + int64(n), Writers: n})
		p := RunPhaseBreakdown(PhaseConfig{Seed: seed + int64(n), Writers: n, Parallel: true})
		t := time.Duration(n) * time.Second
		seq.Add(t, float64(s.Phase2)/1e6)
		par.Add(t, float64(p.Phase2)/1e6)
		rows = append(rows, []string{
			fmt.Sprintf("%d", n), fmtDur(s.Phase2), fmtDur(p.Phase2),
		})
	}
	rec.SetScalar("sequential @10 ms", seq.Points[len(seq.Points)-1].V)
	rec.SetScalar("parallel @10 ms", par.Points[len(par.Points)-1].V)
	out := section("Ablation: sequential vs parallel phase 2 (§6.2 optimization)") +
		trace.Table("", []string{"top-layer n", "sequential phase 2", "parallel phase 2"}, rows) +
		"\nsequential grows linearly (simplicity); parallel stays ≈1 RTT (scalability)\n"
	return Report{Name: "ParallelPhase2", Rec: rec, Rendered: out}
}

// RunTTLTradeoff measures the §4.4.2 accuracy/responsiveness trade-off of
// TTL-bounding the bottom-layer sweep: higher TTL finds bottom-only
// conflicts sooner and more reliably, at higher gossip traffic.
func RunTTLTradeoff(seed int64) Report {
	rec := trace.NewRecorder()
	rows := make([][]string, 0, 4)
	for _, ttl := range []int{1, 2, 4, 6} {
		cl := NewCluster(ClusterConfig{
			Seed:    seed + int64(ttl),
			Nodes:   30,
			Writers: 2,
			Gossip:  true,
			Mutate: func(_ id.NodeID, o *core.Options) {
				o.Gossip = gossip.Config{Interval: 5 * time.Second, Fanout: 2, TTL: ttl}
			},
		})
		cl.Warmup()
		// A stray bottom-layer conflict.
		stray := cl.All[len(cl.All)-1]
		cl.C.CallAtFile(time.Second, stray, SharedFile, func(e env.Env) {
			cl.Nodes[stray].Store().Open(SharedFile).WriteLocal(e.Stamp(), "stray", nil, 7)
		})
		// Run until some writer hears a gossip report (or 120 s).
		found := time.Duration(0)
		for t := 5 * time.Second; t <= 120*time.Second; t += 5 * time.Second {
			cl.C.RunUntil(t)
			heard := 0
			for _, w := range cl.Writers {
				heard += cl.Nodes[w].AlertsTotal()
			}
			reports := cl.C.Stats().Count("gossip.report")
			if (heard > 0 || reports > 0) && found == 0 {
				found = t
			}
		}
		digests := cl.C.Stats().Count("gossip.digest")
		detected := "no"
		delay := "-"
		if found > 0 {
			detected = "yes"
			delay = fmt.Sprintf("%.0f s", found.Seconds())
		}
		rec.SetScalar(fmt.Sprintf("ttl%d digests", ttl), float64(digests))
		if found > 0 {
			rec.SetScalar(fmt.Sprintf("ttl%d delay s", ttl), found.Seconds())
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", ttl), detected, delay, fmt.Sprintf("%d", digests),
		})
	}
	out := section("Ablation: bottom-layer TTL — accuracy vs responsiveness vs cost (§4.4.2)") +
		trace.Table("", []string{"TTL", "bottom conflict found", "detection delay", "gossip digests"}, rows)
	return Report{Name: "TTL", Rec: rec, Rendered: out}
}

// RunRefSelectors compares the reference-consistent-state choices §4.4.1
// sketches: highest-ID (the paper's), most-updates, and merged-dominating.
func RunRefSelectors(seed int64) Report {
	rec := trace.NewRecorder()
	rows := make([][]string, 0, 3)
	for _, sel := range []struct {
		name string
		fn   quantify.RefSelector
	}{
		{"highest-id (paper)", quantify.HighestIDRef},
		{"most-updates", quantify.MostUpdatesRef},
		{"merged", quantify.MergedRef},
	} {
		cl := NewCluster(ClusterConfig{Seed: seed, Nodes: 8, Writers: 4})
		cl.Quant.RefSel = sel.fn
		for _, w := range cl.Writers {
			cl.Nodes[w].Quantifier().RefSel = sel.fn
		}
		cl.Warmup()
		cl.ScheduleUniformWrites(5*time.Second, 50*time.Second)
		rec2 := trace.NewRecorder()
		cl.RunSampling(rec2, "worst", "avg", 5*time.Second, 55*time.Second)
		rows = append(rows, []string{
			sel.name,
			fmt.Sprintf("%.4f", rec2.Series("worst").Min()),
			fmt.Sprintf("%.4f", rec2.Series("avg").Mean()),
		})
		rec.SetScalar(sel.name+" worst", rec2.Series("worst").Min())
	}
	out := section("Ablation: reference consistent state selection (§4.4.1)") +
		trace.Table("", []string{"selector", "lowest level", "mean level"}, rows) +
		"\nmerged references judge every replica behind (no free winner); highest-id matches the paper\n"
	return Report{Name: "RefSel", Rec: rec, Rendered: out}
}

// RunSkewSensitivity checks the NTP assumption (§4.4.1): staleness errors
// absorb clock skew, so levels drift only once skew approaches the
// staleness maximum.
func RunSkewSensitivity(seed int64) Report {
	rec := trace.NewRecorder()
	rows := make([][]string, 0, 4)
	for _, skew := range []time.Duration{0, time.Second, 5 * time.Second, 20 * time.Second} {
		cl := newSkewCluster(seed, skew)
		cl.Warmup()
		cl.ScheduleUniformWrites(5*time.Second, 50*time.Second)
		rec2 := trace.NewRecorder()
		cl.RunSampling(rec2, "worst", "avg", 5*time.Second, 55*time.Second)
		rows = append(rows, []string{
			skew.String(),
			fmt.Sprintf("%.4f", rec2.Series("worst").Min()),
			fmt.Sprintf("%.4f", rec2.Series("avg").Mean()),
		})
		rec.SetScalar(fmt.Sprintf("skew %v worst", skew), rec2.Series("worst").Min())
	}
	out := section("Ablation: clock-skew sensitivity (NTP assumption, §4.4.1)") +
		trace.Table("", []string{"max skew", "lowest level", "mean level"}, rows) +
		"\nlevels stay stable while skew ≪ staleness maximum — the paper's 'within seconds' bound suffices\n"
	return Report{Name: "Skew", Rec: rec, Rendered: out}
}

func newSkewCluster(seed int64, skew time.Duration) *Cluster {
	// Rebuild NewCluster with a skewed simnet.
	cfg := ClusterConfig{Seed: seed, Nodes: 8, Writers: 4}
	all := make([]id.NodeID, cfg.Nodes)
	for i := range all {
		all[i] = id.NodeID(i + 1)
	}
	writers := all[:cfg.Writers]
	mem := overlay.NewStatic(all, map[id.FileID][]id.NodeID{SharedFile: writers})
	c := simnet.New(simnet.Config{Seed: seed, Latency: simnet.WAN{}, MaxSkew: skew})
	nodes := make(map[id.NodeID]*core.Node, cfg.Nodes)
	var quant *quantify.Quantifier
	for _, nid := range all {
		nd := core.NewNode(nid, core.Options{
			Membership:    mem,
			All:           all,
			DisableGossip: true,
			DisableRansub: true,
		})
		num, ord, stale := CalibratedMaxima()
		if err := nd.SetConsistencyMetric(num, ord, stale, nil); err != nil {
			panic(err)
		}
		nodes[nid] = nd
		if quant == nil {
			quant = nd.Quantifier()
		}
		c.Add(nid, nd)
	}
	c.Start()
	return &Cluster{C: c, Nodes: nodes, All: all, Writers: append([]id.NodeID(nil), writers...), Quant: quant}
}
