package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"idea/internal/env"
	"idea/internal/trace"
	"idea/internal/workload"
)

// RunWorkloadSensitivity probes the §6 workload assumption: the paper
// uses a uniform update schedule "due to the lack of available traces".
// This ablation re-runs the hint-95% experiment under Poisson and bursty
// schedules with the same mean rate and compares the floors — showing the
// hint-based controller's behaviour does not hinge on the uniform
// assumption.
func RunWorkloadSensitivity(seed int64) Report {
	const (
		duration = 100 * time.Second
		meanRate = 1.0 / 5 // one update per 5 s per writer, like §6.1
	)
	type schedule struct {
		name  string
		times func(w int) []time.Duration
	}
	rng := rand.New(rand.NewSource(seed))
	schedules := []schedule{
		{"uniform (paper)", func(int) []time.Duration {
			return workload.UniformTimes(0, duration, 5*time.Second)
		}},
		{"poisson", func(int) []time.Duration {
			return workload.PoissonTimes(rng, meanRate, 0, duration)
		}},
		{"burst", func(int) []time.Duration {
			return workload.Burst(2*time.Second, duration, 25*time.Second, 5)
		}},
	}

	rec := trace.NewRecorder()
	rows := make([][]string, 0, len(schedules))
	for _, sc := range schedules {
		cl := NewCluster(ClusterConfig{Seed: seed, Nodes: 12, Writers: 4})
		for _, w := range cl.Writers {
			w := w
			cl.C.CallAtFile(0, w, SharedFile, func(e env.Env) {
				if err := cl.Nodes[w].SetHint(SharedFile, 0.95); err != nil {
					panic(err)
				}
			})
		}
		cl.Warmup()
		for i, w := range cl.Writers {
			for _, at := range sc.times(i) {
				cl.WriteAt(at, w)
			}
		}
		r2 := trace.NewRecorder()
		cl.RunSampling(r2, "worst", "avg", 5*time.Second, duration+5*time.Second)
		resolutions := 0
		for _, w := range cl.Writers {
			resolutions += cl.Nodes[w].Resolver().Resolutions
		}
		rec.SetScalar(sc.name+" floor", r2.Series("worst").Min())
		rec.SetScalar(sc.name+" resolutions", float64(resolutions))
		rows = append(rows, []string{
			sc.name,
			fmt.Sprintf("%.4f", r2.Series("worst").Min()),
			fmt.Sprintf("%.4f", r2.Series("avg").Mean()),
			fmt.Sprintf("%d", resolutions),
		})
	}
	out := section("Ablation: workload sensitivity (uniform vs Poisson vs burst, hint 95%)") +
		trace.Table("", []string{"schedule", "floor", "mean level", "resolutions"}, rows) +
		"\nthe hint floor holds within a few points across schedules — the uniform assumption is not load-bearing\n"
	return Report{Name: "Workload", Rec: rec, Rendered: out}
}
