package experiments

import (
	"fmt"
	"time"

	"idea/internal/env"
	"idea/internal/id"
	"idea/internal/trace"
)

// HintConfig parameterizes the §6.1 adaptive-interface experiments.
type HintConfig struct {
	Seed     int64
	Nodes    int           // default 40 (paper)
	Writers  int           // default 4 (paper)
	Hint     float64       // hint level, e.g. 0.95 for Fig. 7(a)
	Duration time.Duration // default 100 s
	Interval time.Duration // write period, default 5 s
	Sample   time.Duration // sampling period, default 5 s
	// ResetHint, when non-zero, changes the hint to ResetHintTo at
	// Duration/2 (the Fig. 8 combined run).
	ResetHintTo float64
	ResetAt     time.Duration
}

func (c HintConfig) withDefaults() HintConfig {
	if c.Nodes == 0 {
		c.Nodes = 40
	}
	if c.Writers == 0 {
		c.Writers = 4
	}
	if c.Duration == 0 {
		c.Duration = 100 * time.Second
	}
	if c.Interval == 0 {
		c.Interval = 5 * time.Second
	}
	if c.Sample == 0 {
		c.Sample = 5 * time.Second
	}
	return c
}

// RunHint executes the hint-based white-board experiment: Writers
// concurrent writers update the shared file every Interval; IDEA triggers
// active resolution whenever a writer's detected level drops below the
// hint. The recorder carries the "view from the user" (worst writer) and
// "system average" series of Fig. 7.
func RunHint(cfg HintConfig) Report {
	cfg = cfg.withDefaults()
	cl := NewCluster(ClusterConfig{Seed: cfg.Seed, Nodes: cfg.Nodes, Writers: cfg.Writers})
	for _, w := range cl.Writers {
		w := w
		cl.C.CallAtFile(0, w, SharedFile, func(e env.Env) {
			if err := cl.Nodes[w].SetHint(SharedFile, cfg.Hint); err != nil {
				panic(err)
			}
		})
	}
	cl.Warmup()
	if cfg.ResetHintTo > 0 {
		at := cfg.ResetAt
		if at == 0 {
			at = cfg.Duration / 2
		}
		for _, w := range cl.Writers {
			w := w
			cl.C.CallAtFile(at, w, SharedFile, func(e env.Env) {
				if err := cl.Nodes[w].SetHint(SharedFile, cfg.ResetHintTo); err != nil {
					panic(err)
				}
			})
		}
	}
	cl.ScheduleUniformWrites(cfg.Interval, cfg.Duration)

	rec := trace.NewRecorder()
	cl.RunSampling(rec, "view from the user", "system average", cfg.Sample, cfg.Duration+cfg.Sample)

	resolutions := 0
	for _, w := range cl.Writers {
		resolutions += cl.Nodes[w].Resolver().Resolutions
	}
	worst := rec.Series("view from the user")
	rec.SetScalar("lowest user level", worst.Min())
	rec.SetScalar("mean user level", worst.Mean())
	rec.SetScalar("resolutions", float64(resolutions))
	rec.SetScalar("messages", float64(cl.C.Stats().Total()))
	if cfg.ResetHintTo > 0 {
		at := cfg.ResetAt
		if at == 0 {
			at = cfg.Duration / 2
		}
		rec.SetScalar("lowest level before reset", worst.MinBetween(0, at))
		rec.SetScalar("lowest level after reset", worst.MinAfter(at))
	}

	name := fmt.Sprintf("hint %.0f%%", cfg.Hint*100)
	title := fmt.Sprintf("Consistency level over time (hint %.0f%%, %d writers / %d nodes, write every %v)",
		cfg.Hint*100, cfg.Writers, cfg.Nodes, cfg.Interval)
	out := section(title) +
		trace.SeriesTable("", rec.Series("view from the user"), rec.Series("system average")) +
		fmt.Sprintf("\nlowest user-perceived level: %.4f   active resolutions: %d\n",
			worst.Min(), resolutions)
	return Report{Name: name, Rec: rec, Rendered: out}
}

// RunFig7a reproduces Fig. 7(a): hint level 95 %.
func RunFig7a(seed int64) Report {
	r := RunHint(HintConfig{Seed: seed, Hint: 0.95})
	r.Name = "Fig7a"
	return r
}

// RunFig7b reproduces Fig. 7(b): hint level 85 %.
func RunFig7b(seed int64) Report {
	r := RunHint(HintConfig{Seed: seed, Hint: 0.85})
	r.Name = "Fig7b"
	return r
}

// RunFig8 reproduces Fig. 8: a 200-second run with the hint reset from
// 95 % to 90 % at t = 100 s.
func RunFig8(seed int64) Report {
	r := RunHint(HintConfig{
		Seed:        seed,
		Hint:        0.95,
		Duration:    200 * time.Second,
		ResetHintTo: 0.90,
		ResetAt:     100 * time.Second,
	})
	r.Name = "Fig8"
	return r
}

// observerID is unused but kept for interface stability of future
// multi-observer variants.
var _ = id.Nil
