package experiments

import (
	"fmt"
	"time"

	"idea/internal/core"
	"idea/internal/env"
	"idea/internal/gossip"
	"idea/internal/id"
	"idea/internal/trace"
)

// RunTopLayerCapture quantifies the §4.3 claim that the top layer catches
// the vast majority of inconsistencies ("more than 95% in a variety of
// scenarios"): conflicting writes are issued mostly by top-layer writers
// and occasionally by a bottom-layer node; capture rate is the fraction
// of conflicting writes whose conflict is visible to top-layer detection
// (writer in the top layer) versus only discoverable by the gossip sweep.
func RunTopLayerCapture(seed int64, bottomShare float64) Report {
	if bottomShare == 0 {
		bottomShare = 0.05
	}
	cl := NewCluster(ClusterConfig{
		Seed:    seed,
		Nodes:   40,
		Writers: 4,
		Gossip:  true,
		Mutate: func(_ id.NodeID, o *core.Options) {
			o.Gossip = gossip.Config{Interval: 5 * time.Second, Fanout: 3, TTL: 4}
		},
	})
	cl.Warmup()

	bottomWriter := cl.All[len(cl.All)-1]
	topWrites, bottomWrites := 0, 0
	end := 200 * time.Second
	for t := 5 * time.Second; t <= end; t += 5 * time.Second {
		for _, w := range cl.Writers {
			cl.WriteAt(t, w)
			topWrites++
		}
		// A bottom-layer node occasionally writes the same file
		// directly against its own replica (it is not in the top
		// layer, so detection cannot see it).
		if float64(int(t/(5*time.Second)))*bottomShare >= float64(bottomWrites+1) {
			bw := bottomWriter
			cl.C.CallAtFile(t, bw, SharedFile, func(e env.Env) {
				cl.Nodes[bw].Store().Open(SharedFile).WriteLocal(e.Stamp(), "stray", nil, 0)
			})
			bottomWrites++
		}
	}
	cl.C.RunFor(end + 30*time.Second)

	total := topWrites + bottomWrites
	capture := float64(topWrites) / float64(total)
	gossipReports := cl.C.Stats().Count("gossip.report")
	alerts := 0
	for _, nd := range cl.Nodes {
		alerts += nd.AlertsTotal()
	}

	rec := trace.NewRecorder()
	rec.SetScalar("capture rate", capture)
	rec.SetScalar("bottom-only writes", float64(bottomWrites))
	rec.SetScalar("gossip reports", float64(gossipReports))
	rec.SetScalar("alerts", float64(alerts))
	out := section("Top-layer capture (§4.3 claim: >95%)") +
		trace.Table("", []string{"metric", "value"}, [][]string{
			{"conflicting writes (top layer)", fmt.Sprintf("%d", topWrites)},
			{"conflicting writes (bottom only)", fmt.Sprintf("%d", bottomWrites)},
			{"capture rate", fmt.Sprintf("%.2f%%", capture*100)},
			{"gossip reports (bottom sweep)", fmt.Sprintf("%d", gossipReports)},
			{"discrepancy alerts raised", fmt.Sprintf("%d", alerts)},
		})
	return Report{Name: "Capture", Rec: rec, Rendered: out}
}

// RunRollback measures the §4.4.2 rollback path: a bottom-layer-only
// conflict is planted, the top layer returns a clean verdict, the user
// keeps working, and the gossip sweep later contradicts the verdict.
// Reported: discrepancy detection delay and rolled-back operations.
func RunRollback(seed int64) Report {
	cl := NewCluster(ClusterConfig{
		Seed:    seed,
		Nodes:   12,
		Writers: 2,
		Gossip:  true,
		Mutate: func(_ id.NodeID, o *core.Options) {
			o.Gossip = gossip.Config{Interval: 5 * time.Second, Fanout: 3, TTL: 4}
		},
	})
	for _, w := range cl.Writers {
		w := w
		cl.C.CallAtFile(0, w, SharedFile, func(e env.Env) {
			if err := cl.Nodes[w].SetHint(SharedFile, 0.9); err != nil {
				panic(err)
			}
		})
	}
	cl.Warmup()

	// The stray bottom-layer conflict.
	stray := cl.All[len(cl.All)-1]
	cl.C.CallAtFile(time.Second, stray, SharedFile, func(e env.Env) {
		r := cl.Nodes[stray].Store().Open(SharedFile)
		for i := 0; i < 10; i++ {
			r.WriteLocal(e.Stamp(), "stray", nil, float64(i))
		}
	})

	// Writer 1 writes, gets a clean top-layer verdict at ~t0, and keeps
	// working on the validated snapshot.
	var verdictAt time.Duration
	w1 := cl.Writers[0]
	cl.C.CallAtFile(2*time.Second, w1, SharedFile, func(e env.Env) {
		u := cl.Nodes[w1].Write(e, SharedFile, "draw", nil, 0)
		for _, w := range cl.Writers[1:] {
			cl.Nodes[w].Store().Open(SharedFile).Apply(u)
		}
	})
	cl.C.CallAtFile(3*time.Second, w1, SharedFile, func(e env.Env) {
		verdictAt = 3 * time.Second
		r := cl.Nodes[w1].Store().Open(SharedFile)
		r.WriteLocal(e.Stamp(), "draft", nil, 1)
		r.WriteLocal(e.Stamp(), "draft", nil, 2)
	})

	var alert *core.Alert
	var alertAt time.Duration
	cl.Nodes[w1].SetOnAlert(func(_ env.Env, a core.Alert) {
		if alert == nil && a.RolledBack {
			ac := a
			alert = &ac
			alertAt = cl.C.Elapsed()
		}
	})
	cl.C.RunFor(120 * time.Second)

	rec := trace.NewRecorder()
	rows := [][]string{}
	if alert != nil {
		delay := alertAt - verdictAt
		rec.SetScalar("rollback delay s", delay.Seconds())
		rec.SetScalar("undone ops", float64(alert.Undone))
		rows = append(rows,
			[]string{"discrepancy delay (TTL-bounded sweep)", fmt.Sprintf("%.1f s", delay.Seconds())},
			[]string{"operations rolled back", fmt.Sprintf("%d", alert.Undone)},
			[]string{"top-layer verdict", fmt.Sprintf("%.4f", alert.Top)},
			[]string{"bottom-layer verdict", fmt.Sprintf("%.4f", alert.Bottom)},
		)
	} else {
		rows = append(rows, []string{"rollback", "NOT TRIGGERED"})
	}
	out := section("Rollback on top/bottom discrepancy (§4.4.2)") +
		trace.Table("", []string{"metric", "value"}, rows)
	return Report{Name: "Rollback", Rec: rec, Rendered: out}
}

// RunBoundsLearning exercises the §5.2 frequency-bounds learning: the
// automatic controller starts from Formula 4's optimum, business feedback
// reports oversells (period too long) and undersells (period too short),
// and the controller converges into the learned window.
func RunBoundsLearning(seed int64) Report {
	cl := NewCluster(ClusterConfig{Seed: seed, Nodes: 8, Writers: 4})
	w1 := cl.Writers[0]
	ctl := &core.AutoController{
		CapacityBps:    125_000, // 1 Mbps
		MaxShare:       0.2,
		RoundCostBytes: 44 * 1024, // the paper's c = 44·s with s = 1 KB
		MinPeriod:      time.Second,
	}
	cl.C.CallAtFile(0, w1, SharedFile, func(e env.Env) {
		cl.Nodes[w1].EnableAutomatic(e, SharedFile, ctl, 10*time.Second)
	})
	cl.C.RunFor(time.Second)
	initial := cl.Nodes[w1].BackgroundFreq(SharedFile)

	rec := trace.NewRecorder()
	series := rec.Series("background period (s)")
	series.Add(cl.C.Elapsed(), initial.Seconds())

	// Feedback schedule: two oversells tighten the ceiling, then an
	// undersell raises the floor.
	cl.C.CallAtFile(20*time.Second, w1, SharedFile, func(e env.Env) { cl.Nodes[w1].ReportOversell(e, SharedFile) })
	cl.C.CallAtFile(40*time.Second, w1, SharedFile, func(e env.Env) { cl.Nodes[w1].ReportOversell(e, SharedFile) })
	cl.C.CallAtFile(60*time.Second, w1, SharedFile, func(e env.Env) { cl.Nodes[w1].ReportUndersell(e, SharedFile) })
	for t := 25 * time.Second; t <= 80*time.Second; t += 20 * time.Second {
		cl.C.RunUntil(t)
		series.Add(t, cl.Nodes[w1].BackgroundFreq(SharedFile).Seconds())
	}
	cl.C.RunFor(10 * time.Second)

	lo, hi := ctl.LearnedBounds()
	final := cl.Nodes[w1].BackgroundFreq(SharedFile)
	rec.SetScalar("initial period s", initial.Seconds())
	rec.SetScalar("final period s", final.Seconds())
	rec.SetScalar("learned lo s", lo.Seconds())
	rec.SetScalar("learned hi s", hi.Seconds())

	out := section("Frequency bounds learning (§5.2)") +
		trace.Table("", []string{"metric", "value"}, [][]string{
			{"initial period (Formula 4)", fmt.Sprintf("%.2f s", initial.Seconds())},
			{"after 2 oversells + 1 undersell", fmt.Sprintf("%.2f s", final.Seconds())},
			{"learned floor (undersell)", fmt.Sprintf("%.2f s", lo.Seconds())},
			{"learned ceiling (oversell)", fmt.Sprintf("%.2f s", hi.Seconds())},
		})
	return Report{Name: "Bounds", Rec: rec, Rendered: out}
}
