package experiments

import (
	"fmt"
	"time"

	"idea/internal/baseline"
	"idea/internal/detect"
	"idea/internal/env"
	"idea/internal/id"
	"idea/internal/simnet"
	"idea/internal/trace"
	"idea/internal/vv"
)

// TradeoffResult is one system's row in the Fig. 2 comparison.
type TradeoffResult struct {
	System string
	// DetectDelay is how long a conflicting update stays unnoticed
	// (IDEA: detect() elapsed; optimistic: anti-entropy notice age;
	// strong: 0 — conflicts cannot form).
	DetectDelay time.Duration
	// Messages is total protocol traffic for the identical workload.
	Messages int
	Bytes    int
	// MeanLevel is the omnisciently sampled average consistency level.
	MeanLevel float64
	// WriteLatency is the application-visible write cost (strong pays
	// a synchronous round; the others commit locally).
	WriteLatency time.Duration
}

const tradeoffRounds = 20
const tradeoffInterval = 5 * time.Second

// RunFig2Tradeoff runs the identical four-writer workload under IDEA,
// optimistic consistency, and strong consistency, and reports the
// overhead-vs-consistency positioning the paper sketches in Fig. 2:
// IDEA detects nearly as fast as strong consistency enforces, at a small
// multiple of optimistic cost and far below strong-consistency cost.
func RunFig2Tradeoff(seed int64) Report {
	idea := runIdeaArm(seed)
	opt := runOptimisticArm(seed + 1)
	strong := runStrongArm(seed + 2)

	rec := trace.NewRecorder()
	rows := make([][]string, 0, 3)
	for _, r := range []TradeoffResult{opt, idea, strong} {
		rec.SetScalar(r.System+" messages", float64(r.Messages))
		rec.SetScalar(r.System+" detect ms", float64(r.DetectDelay)/1e6)
		rec.SetScalar(r.System+" mean level", r.MeanLevel)
		rows = append(rows, []string{
			r.System,
			fmtDur(r.DetectDelay),
			fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%d", r.Bytes),
			fmt.Sprintf("%.4f", r.MeanLevel),
			fmtDur(r.WriteLatency),
		})
	}
	out := section("Fig 2 (measured): consistency guarantee vs overhead across control schemes") +
		trace.Table("", []string{"system", "detection delay", "messages", "bytes", "mean level", "write latency"}, rows) +
		"\nexpected ordering: optimistic < IDEA < strong on overhead; strong < IDEA < optimistic on detection delay\n"
	return Report{Name: "Fig2", Rec: rec, Rendered: out}
}

func runIdeaArm(seed int64) TradeoffResult {
	cl := NewCluster(ClusterConfig{Seed: seed, Nodes: 8, Writers: 4})
	for _, w := range cl.Writers {
		w := w
		cl.C.CallAtFile(0, w, SharedFile, func(e env.Env) {
			if err := cl.Nodes[w].SetHint(SharedFile, 0.95); err != nil {
				panic(err)
			}
		})
	}
	cl.Warmup()
	var delays []time.Duration
	for _, w := range cl.Writers {
		w := w
		cl.Nodes[w].SetOnLevel(func(_ env.Env, f id.FileID, res detect.Result) {
			if f == SharedFile && !res.OK {
				delays = append(delays, res.Elapsed)
			}
		})
	}
	cl.ScheduleUniformWrites(tradeoffInterval, tradeoffRounds*tradeoffInterval)
	rec := trace.NewRecorder()
	cl.RunSampling(rec, "worst", "avg", tradeoffInterval, tradeoffRounds*tradeoffInterval+tradeoffInterval)
	return TradeoffResult{
		System:      "IDEA (hint 95%)",
		DetectDelay: meanDur(delays),
		Messages:    cl.C.Stats().Total(),
		Bytes:       cl.C.Stats().Bytes(),
		MeanLevel:   rec.Series("avg").Mean(),
	}
}

func runOptimisticArm(seed int64) TradeoffResult {
	ids := []id.NodeID{1, 2, 3, 4}
	c := simnet.New(simnet.Config{Seed: seed, Latency: simnet.WAN{}})
	nodes := make(map[id.NodeID]*baseline.Optimistic)
	var noticeAges []time.Duration
	for _, nid := range ids {
		var peers []id.NodeID
		for _, p := range ids {
			if p != nid {
				peers = append(peers, p)
			}
		}
		o := baseline.NewOptimistic(baseline.OptimisticConfig{Interval: 30 * time.Second}, nid, peers)
		o.OnConflict = func(_ env.Env, n baseline.ConflictNotice) {
			noticeAges = append(noticeAges, n.Since)
		}
		nodes[nid] = o
		c.Add(nid, o)
	}
	c.Start()
	for r := 1; r <= tradeoffRounds; r++ {
		at := time.Duration(r) * tradeoffInterval
		for _, nid := range ids {
			nid := nid
			c.CallAtFile(at, nid, SharedFile, func(e env.Env) {
				nodes[nid].Write(e, SharedFile, "draw", []byte("op"), 0)
			})
		}
	}
	// Sample levels with the calibrated quantifier.
	cl := NewCluster(ClusterConfig{Seed: seed, Nodes: 1, Writers: 1}) // for the quantifier only
	quant := cl.Quant
	levels := 0.0
	samples := 0
	for t := tradeoffInterval / 2; t <= tradeoffRounds*tradeoffInterval+tradeoffInterval; t += tradeoffInterval {
		c.RunUntil(t)
		cands := make(map[id.NodeID]*vv.Vector, len(ids))
		for _, nid := range ids {
			cands[nid] = nodes[nid].Store().Open(SharedFile).Vector()
		}
		_, ref := quant.RefSel(cands)
		for _, nid := range ids {
			_, l := quant.Score(cands[nid], ref)
			levels += l
			samples++
		}
	}
	return TradeoffResult{
		System:      "optimistic (AE 30s)",
		DetectDelay: meanDur(noticeAges),
		Messages:    c.Stats().Total(),
		Bytes:       c.Stats().Bytes(),
		MeanLevel:   levels / float64(samples),
	}
}

func runStrongArm(seed int64) TradeoffResult {
	ids := []id.NodeID{1, 2, 3, 4}
	c := simnet.New(simnet.Config{Seed: seed, Latency: simnet.WAN{}})
	nodes := make(map[id.NodeID]*baseline.Strong)
	var commitLatencies []time.Duration
	for _, nid := range ids {
		s := baseline.NewStrong(baseline.StrongConfig{Replicas: ids}, nid)
		s.OnCommit = func(_ env.Env, n baseline.CommitNotice) {
			commitLatencies = append(commitLatencies, n.Latency)
		}
		nodes[nid] = s
		c.Add(nid, s)
	}
	c.Start()
	for r := 1; r <= tradeoffRounds; r++ {
		at := time.Duration(r) * tradeoffInterval
		for _, nid := range ids {
			nid := nid
			c.CallAtFile(at, nid, SharedFile, func(e env.Env) {
				nodes[nid].Write(e, SharedFile, "draw", []byte("op"), 0)
			})
		}
	}
	c.RunFor(tradeoffRounds*tradeoffInterval + 10*time.Second)
	return TradeoffResult{
		System:       "strong (primary copy)",
		DetectDelay:  0, // conflicts cannot form
		Messages:     c.Stats().Total(),
		Bytes:        c.Stats().Bytes(),
		MeanLevel:    1,
		WriteLatency: meanDur(commitLatencies),
	}
}

func meanDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}
