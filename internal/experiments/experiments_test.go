package experiments

import (
	"testing"
	"time"
)

// TestFig7aShape checks the paper's headline result: with a 95 % hint the
// user-perceived consistency level stays near the hint — dipping at most
// a couple of points below before active resolution recovers it.
func TestFig7aShape(t *testing.T) {
	r := RunFig7a(1)
	low := r.Rec.Scalar("lowest user level")
	if low < 0.90 || low >= 1.0 {
		t.Fatalf("lowest level = %.4f, want ≈0.94 (dip just below hint)", low)
	}
	if r.Rec.Scalar("resolutions") == 0 {
		t.Fatal("no resolutions ran at hint 95%")
	}
}

// TestFig7bShape: at hint 85 % resolutions are rarer and dips deeper.
func TestFig7bShape(t *testing.T) {
	a := RunFig7a(1)
	b := RunFig7b(1)
	lowA := a.Rec.Scalar("lowest user level")
	lowB := b.Rec.Scalar("lowest user level")
	if lowB >= lowA {
		t.Fatalf("hint85 low %.4f should dip below hint95 low %.4f", lowB, lowA)
	}
	if lowB < 0.78 {
		t.Fatalf("hint85 low %.4f dipped too far below the hint", lowB)
	}
	if b.Rec.Scalar("resolutions") > a.Rec.Scalar("resolutions") {
		t.Fatalf("hint85 resolved more often (%v) than hint95 (%v)",
			b.Rec.Scalar("resolutions"), a.Rec.Scalar("resolutions"))
	}
}

// TestFig8Shape: the floor tracks the hint change at t=100 s.
func TestFig8Shape(t *testing.T) {
	r := RunFig8(1)
	before := r.Rec.Scalar("lowest level before reset")
	after := r.Rec.Scalar("lowest level after reset")
	if before < 0.90 {
		t.Fatalf("first-half floor %.4f too low for hint 95%%", before)
	}
	if after >= before {
		t.Fatalf("second-half floor %.4f should drop below first-half %.4f after hint reset to 90%%", after, before)
	}
	if after < 0.83 {
		t.Fatalf("second-half floor %.4f too low for hint 90%%", after)
	}
}

// TestTable2Shape: phase 1 ≪ phase 2; per-member cost ≈ one WAN RTT.
func TestTable2Shape(t *testing.T) {
	r := RunTable2(1)
	p1 := r.Rec.Scalar("phase1 ms (fast)")
	p2 := r.Rec.Scalar("phase2 ms (fast)")
	if p1 > 5 {
		t.Fatalf("fast phase 1 = %.3f ms, want sub-5ms (paper: 0.468 ms)", p1)
	}
	if p2 < 200 || p2 > 600 {
		t.Fatalf("phase 2 = %.3f ms, want ≈314 ms", p2)
	}
	per := r.Rec.Scalar("per-member ms")
	if per < 70 || per > 200 {
		t.Fatalf("per-member cost = %.3f ms, want ≈105 ms", per)
	}
	if strict := r.Rec.Scalar("phase1 ms (strict)"); strict <= p1 {
		t.Fatalf("strict phase 1 (%.3f ms) should exceed fast (%.3f ms)", strict, p1)
	}
}

// TestFig9Shape: delay grows roughly linearly and stays sub-second at 10.
func TestFig9Shape(t *testing.T) {
	r := RunFig9(1)
	s := r.Rec.Series("measured total (ms)")
	if len(s.Points) != 9 {
		t.Fatalf("points = %d", len(s.Points))
	}
	first, last := s.Points[0].V, s.Points[len(s.Points)-1].V
	if last <= first {
		t.Fatalf("delay not increasing: n=2 %.1f ms vs n=10 %.1f ms", first, last)
	}
	if last >= 1000 {
		t.Fatalf("n=10 delay %.1f ms, paper says below one second", last)
	}
	// Roughly linear: n=10 delay ≈ (10-1)/(2-1)=9× per-member vs n=2.
	if last < 4*first {
		t.Fatalf("growth too flat for a sequential phase 2: %.1f → %.1f", first, last)
	}
}

// TestFig10Table3Shape: doubling the background frequency roughly doubles
// the overhead and raises the mean consistency level.
func TestFig10Table3Shape(t *testing.T) {
	r := RunFig10Table3(1)
	m20 := r.Rec.Scalar("messages @20s")
	m40 := r.Rec.Scalar("messages @40s")
	if m20 <= m40 {
		t.Fatalf("overhead @20s (%v) should exceed @40s (%v)", m20, m40)
	}
	ratio := m20 / m40
	if ratio < 1.4 || ratio > 3.0 {
		t.Fatalf("overhead ratio = %.2f, want ≈2 (paper: 168/96 = 1.75)", ratio)
	}
	l20 := r.Rec.Scalar("mean level @20s")
	l40 := r.Rec.Scalar("mean level @40s")
	if l20 <= l40 {
		t.Fatalf("mean level @20s (%.4f) should exceed @40s (%.4f)", l20, l40)
	}
	if pr := r.Rec.Scalar("msgs per round (formula 5)"); pr < 4 || pr > 80 {
		t.Fatalf("per-round messages = %.1f, implausible", pr)
	}
}

// TestFig2Shape: the measured trade-off must reproduce the Fig. 2
// ordering.
func TestFig2Shape(t *testing.T) {
	r := RunFig2Tradeoff(1)
	optMsgs := r.Rec.Scalar("optimistic (AE 30s) messages")
	ideaMsgs := r.Rec.Scalar("IDEA (hint 95%) messages")
	strongMsgs := r.Rec.Scalar("strong (primary copy) messages")
	if !(optMsgs < ideaMsgs && ideaMsgs < strongMsgs) {
		t.Fatalf("overhead ordering violated: opt=%v idea=%v strong=%v", optMsgs, ideaMsgs, strongMsgs)
	}
	optLvl := r.Rec.Scalar("optimistic (AE 30s) mean level")
	ideaLvl := r.Rec.Scalar("IDEA (hint 95%) mean level")
	strongLvl := r.Rec.Scalar("strong (primary copy) mean level")
	if !(optLvl < ideaLvl && ideaLvl <= strongLvl) {
		t.Fatalf("consistency ordering violated: opt=%.4f idea=%.4f strong=%.4f", optLvl, ideaLvl, strongLvl)
	}
	ideaDet := r.Rec.Scalar("IDEA (hint 95%) detect ms")
	optDet := r.Rec.Scalar("optimistic (AE 30s) detect ms")
	if ideaDet >= optDet {
		t.Fatalf("IDEA detection (%.1f ms) should beat optimistic (%.1f ms)", ideaDet, optDet)
	}
}

// TestCaptureShape: the top layer captures ≈95 % of conflicts when 5 % of
// writes come from the bottom layer, and the gossip sweep reports the
// rest.
func TestCaptureShape(t *testing.T) {
	r := RunTopLayerCapture(1, 0.05)
	cap := r.Rec.Scalar("capture rate")
	if cap < 0.90 {
		t.Fatalf("capture = %.3f, want >= 0.90", cap)
	}
	if r.Rec.Scalar("gossip reports") == 0 {
		t.Fatal("bottom sweep never reported the stray conflicts")
	}
}

// TestRollbackShape: the sweep contradicts the clean top-layer verdict
// within a few gossip rounds and undoes the draft operations.
func TestRollbackShape(t *testing.T) {
	r := RunRollback(1)
	if r.Rec.Scalar("undone ops") < 1 {
		t.Fatalf("rollback undid %v ops, want >= 1\n%s", r.Rec.Scalar("undone ops"), r.Rendered)
	}
	delay := r.Rec.Scalar("rollback delay s")
	if delay <= 0 || delay > 60 {
		t.Fatalf("rollback delay = %.1f s, want within a few gossip rounds", delay)
	}
}

// TestBoundsShape: feedback narrows the frequency window monotonically.
func TestBoundsShape(t *testing.T) {
	r := RunBoundsLearning(1)
	lo := r.Rec.Scalar("learned lo s")
	hi := r.Rec.Scalar("learned hi s")
	if hi == 0 || lo == 0 {
		t.Fatalf("bounds not learned: lo=%.2f hi=%.2f", lo, hi)
	}
	init := r.Rec.Scalar("initial period s")
	if hi >= init {
		t.Fatalf("oversell ceiling %.2f s should undercut the initial %.2f s", hi, init)
	}
}

// TestDeterminism: identical seeds replay identical results.
func TestDeterminism(t *testing.T) {
	a := RunHint(HintConfig{Seed: 7, Nodes: 10, Duration: 30 * time.Second, Hint: 0.95})
	b := RunHint(HintConfig{Seed: 7, Nodes: 10, Duration: 30 * time.Second, Hint: 0.95})
	if a.Rec.Scalar("messages") != b.Rec.Scalar("messages") {
		t.Fatalf("replay diverged: %v vs %v messages", a.Rec.Scalar("messages"), b.Rec.Scalar("messages"))
	}
	if a.Rec.Scalar("lowest user level") != b.Rec.Scalar("lowest user level") {
		t.Fatal("replay diverged on levels")
	}
}
