package experiments

import (
	"fmt"
	"time"

	"idea/internal/core"
	"idea/internal/env"
	"idea/internal/id"
	"idea/internal/resolve"
	"idea/internal/trace"
)

// PhaseConfig parameterizes the §6.2 response-time experiments.
type PhaseConfig struct {
	Seed    int64
	Writers int // top-layer size (paper: 4)
	Nodes   int
	// Strict switches phase 1 to the wait-for-acks ablation.
	Strict bool
	// Parallel switches phase 2 to the parallel-collect variant.
	Parallel bool
}

// PhaseResult is the measured breakdown of one configuration.
type PhaseResult struct {
	Writers        int
	Phase1, Phase2 time.Duration // means over the runs
	Runs           int
}

// RunPhaseBreakdown measures active-resolution phase delays the way the
// paper does: "we run the consistency resolution scheme four times, and
// each time we pick a different writer to initiate the request", then
// average.
func RunPhaseBreakdown(cfg PhaseConfig) PhaseResult {
	if cfg.Writers == 0 {
		cfg.Writers = 4
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = cfg.Writers * 2
	}
	cl := NewCluster(ClusterConfig{
		Seed:    cfg.Seed,
		Nodes:   cfg.Nodes,
		Writers: cfg.Writers,
		Mutate: func(_ id.NodeID, o *core.Options) {
			if cfg.Strict {
				o.Resolve.Phase1 = resolve.StrictPhase1
			}
			o.Resolve.ParallelCollect = cfg.Parallel
		},
	})
	cl.Warmup()

	var p1sum, p2sum time.Duration
	runs := 0
	at := time.Second
	for i, initiator := range cl.Writers {
		// Fresh conflict before each run: every writer updates.
		for _, w := range cl.Writers {
			cl.WriteAt(at, w)
		}
		at += 2 * time.Second
		initiator := initiator
		var got *resolve.Outcome
		cl.Nodes[initiator].SetOnOutcome(func(_ env.Env, o resolve.Outcome) {
			if !o.Aborted {
				oc := o
				got = &oc
			}
		})
		cl.C.CallAtFile(at, initiator, SharedFile, func(e env.Env) {
			cl.Nodes[initiator].DemandActiveResolution(e, SharedFile)
		})
		at += 5 * time.Second
		cl.C.RunUntil(at)
		if got != nil {
			p1sum += got.Phase1
			p2sum += got.Phase2
			runs++
		}
		cl.Nodes[initiator].SetOnOutcome(nil)
		_ = i
	}
	if runs == 0 {
		return PhaseResult{Writers: cfg.Writers}
	}
	return PhaseResult{
		Writers: cfg.Writers,
		Phase1:  p1sum / time.Duration(runs),
		Phase2:  p2sum / time.Duration(runs),
		Runs:    runs,
	}
}

// RunTable2 reproduces Table 2: the two-phase delay breakdown for a
// four-writer top layer, fast phase 1 (the paper's semantics) plus the
// strict-phase-1 ablation row.
func RunTable2(seed int64) Report {
	fast := RunPhaseBreakdown(PhaseConfig{Seed: seed})
	strict := RunPhaseBreakdown(PhaseConfig{Seed: seed + 1, Strict: true})

	rec := trace.NewRecorder()
	rec.SetScalar("phase1 ms (fast)", float64(fast.Phase1)/1e6)
	rec.SetScalar("phase2 ms (fast)", float64(fast.Phase2)/1e6)
	rec.SetScalar("phase1 ms (strict)", float64(strict.Phase1)/1e6)
	rec.SetScalar("phase2 ms (strict)", float64(strict.Phase2)/1e6)
	perMember := fast.Phase2 / time.Duration(fast.Writers-1)
	rec.SetScalar("per-member ms", float64(perMember)/1e6)

	rows := [][]string{
		{"Phase 1 (fast, paper semantics)", fmtDur(fast.Phase1)},
		{"Phase 2", fmtDur(fast.Phase2)},
		{"Phase 1 (strict ablation)", fmtDur(strict.Phase1)},
		{"Phase 2 (strict ablation)", fmtDur(strict.Phase2)},
	}
	out := section("Table 2: delay breakdown of one round of active resolution (top layer = 4)") +
		trace.Table("", []string{"phase", "delay"}, rows) +
		fmt.Sprintf("\nper-member sequential cost: %s (paper: 104.747 ms)\n", fmtDur(perMember))
	return Report{Name: "Table2", Rec: rec, Rendered: out}
}

// Formula2 is the paper's extrapolation for active resolution delay with
// top-layer size n, parameterized by the measured constants.
func Formula2(phase1 time.Duration, perMember time.Duration, n int) time.Duration {
	return phase1 + time.Duration(n-1)*perMember
}

// Formula3 is the background-resolution analogue (no phase 1).
func Formula3(perMember time.Duration, n int) time.Duration {
	return time.Duration(n-1) * perMember
}

// RunFig9 reproduces Fig. 9: measured active-resolution delay for top
// layers of size 2..10 alongside the Formula 2 extrapolation built from
// the 4-writer measurement.
func RunFig9(seed int64) Report {
	base := RunPhaseBreakdown(PhaseConfig{Seed: seed})
	perMember := base.Phase2 / time.Duration(base.Writers-1)

	rec := trace.NewRecorder()
	measured := rec.Series("measured total (ms)")
	extrap := rec.Series("formula 2 (ms)")
	bg := rec.Series("formula 3 background (ms)")

	rows := make([][]string, 0, 9)
	for n := 2; n <= 10; n++ {
		m := RunPhaseBreakdown(PhaseConfig{Seed: seed + int64(n), Writers: n})
		total := m.Phase1 + m.Phase2
		f2 := Formula2(base.Phase1, perMember, n)
		f3 := Formula3(perMember, n)
		t := time.Duration(n) * time.Second // x-axis stand-in
		measured.Add(t, float64(total)/1e6)
		extrap.Add(t, float64(f2)/1e6)
		bg.Add(t, float64(f3)/1e6)
		rows = append(rows, []string{
			fmt.Sprintf("%d", n), fmtDur(total), fmtDur(f2), fmtDur(f3),
		})
	}
	rec.SetScalar("delay at n=10 ms", measured.Points[len(measured.Points)-1].V)
	out := section("Fig 9: scalability of active resolution (measured vs Formula 2/3)") +
		trace.Table("", []string{"top-layer n", "measured", "formula 2", "formula 3 (background)"}, rows) +
		"\nsub-second at n=10, linear in n: matches the paper's conclusion\n"
	return Report{Name: "Fig9", Rec: rec, Rendered: out}
}
