package experiments

import (
	"fmt"
	"time"

	"idea/internal/apps/booking"
	"idea/internal/core"
	"idea/internal/env"
	"idea/internal/id"
	"idea/internal/overlay"
	"idea/internal/simnet"
	"idea/internal/trace"
	"idea/internal/vv"
)

// AutoConfig parameterizes the §6.3 automatic booking experiments.
type AutoConfig struct {
	Seed     int64
	Servers  int           // booking servers forming the top layer (default 4)
	Nodes    int           // total nodes (default 40)
	Freq     time.Duration // background resolution period (20 s / 40 s)
	Duration time.Duration // default 100 s
	Interval time.Duration // booking period per server, default 5 s
	Sample   time.Duration // sampling period, default 5 s
}

func (c AutoConfig) withDefaults() AutoConfig {
	if c.Servers == 0 {
		c.Servers = 4
	}
	if c.Nodes == 0 {
		c.Nodes = 40
	}
	if c.Duration == 0 {
		c.Duration = 100 * time.Second
	}
	if c.Interval == 0 {
		c.Interval = 5 * time.Second
	}
	if c.Sample == 0 {
		c.Sample = 5 * time.Second
	}
	return c
}

// AutoResult is one automatic run's outcome.
type AutoResult struct {
	Freq       time.Duration
	Rec        *trace.Recorder
	Messages   int // resolution protocol messages (Table 3's overhead)
	AllTraffic int
	Rounds     int
	Oversold   int
}

const flightFile = id.FileID("flight")

// RunAutomatic executes one Fig. 10 configuration: booking servers
// committing updates, consistency maintained solely by background
// resolution at the given frequency.
func RunAutomatic(cfg AutoConfig) AutoResult {
	cfg = cfg.withDefaults()
	all := make([]id.NodeID, cfg.Nodes)
	for i := range all {
		all[i] = id.NodeID(i + 1)
	}
	servers := all[:cfg.Servers]
	mem := overlay.NewStatic(all, map[id.FileID][]id.NodeID{flightFile: servers})
	c := simnet.New(simnet.Config{Seed: cfg.Seed, Latency: simnet.WAN{}})
	nodes := make(map[id.NodeID]*core.Node, cfg.Nodes)
	books := make(map[id.NodeID]*booking.Server, cfg.Servers)
	var bookList []*booking.Server
	for _, nid := range all {
		nd := core.NewNode(nid, core.Options{
			Membership:    mem,
			All:           all,
			DisableGossip: true,
			DisableRansub: true,
		})
		nodes[nid] = nd
		c.Add(nid, nd)
	}
	for _, nid := range servers {
		s, err := booking.New(nodes[nid], flightFile, 1<<30, 100)
		if err != nil {
			panic(err)
		}
		// Booking casts its own metric; align the maxima with the
		// calibrated experiment-wide values.
		num, ord, stale := CalibratedMaxima()
		if err := nodes[nid].SetConsistencyMetric(num, ord, stale, nil); err != nil {
			panic(err)
		}
		books[nid] = s
		bookList = append(bookList, s)
	}
	c.Start()

	// Arm fixed-frequency background resolution on every server.
	for _, nid := range servers {
		nid := nid
		c.CallAtFile(0, nid, flightFile, func(e env.Env) {
			nodes[nid].SetMode(flightFile, core.FullyAutomatic)
			nodes[nid].SetBackgroundFreq(e, flightFile, cfg.Freq)
		})
	}
	// Warm-up shared prefix.
	w0 := servers[0]
	c.CallAtFile(100*time.Millisecond, w0, flightFile, func(e env.Env) {
		u := nodes[w0].Store().Open(flightFile).WriteLocal(e.Stamp(), "init", nil, 0)
		for _, s := range servers[1:] {
			nodes[s].Store().Open(flightFile).Apply(u)
		}
	})

	// Bookings every Interval at every server.
	for t := cfg.Interval; t <= cfg.Duration; t += cfg.Interval {
		for _, nid := range servers {
			nid := nid
			c.CallAt(t, nid, func(e env.Env) { books[nid].Book(e, 1) })
		}
	}

	rec := trace.NewRecorder()
	quant := nodes[servers[0]].Quantifier()
	for t := cfg.Sample / 2; t <= cfg.Duration+cfg.Sample; t += cfg.Sample {
		c.RunUntil(t)
		// Top-layer perceived consistency (the Fig. 10 series).
		cands := make(map[id.NodeID]*vv.Vector, len(servers))
		for _, nid := range servers {
			cands[nid] = nodes[nid].Store().Open(flightFile).Vector()
		}
		_, ref := quant.RefSel(cands)
		sum := 0.0
		for _, nid := range servers {
			_, level := quant.Score(cands[nid], ref)
			sum += level
		}
		rec.Series("consistency level").Add(t, sum/float64(len(servers)))
	}
	c.RunUntil(cfg.Duration + cfg.Sample)

	msgs := c.Stats().TotalMatching("resolve.")
	rounds := 0
	for _, nid := range servers {
		rounds += nodes[nid].Resolver().Resolutions
	}
	rec.SetScalar("messages", float64(msgs))
	rec.SetScalar("rounds", float64(rounds))
	return AutoResult{
		Freq:       cfg.Freq,
		Rec:        rec,
		Messages:   msgs,
		AllTraffic: c.Stats().Total(),
		Rounds:     rounds,
		Oversold:   booking.GlobalSold(bookList),
	}
}

// RunFig10Table3 reproduces Fig. 10 and Table 3 together: the automatic
// booking system at 20 s and 40 s background frequencies, the consistency
// timelines, the message overhead, and the Formula 4/5 derivations of
// §6.3.2.
func RunFig10Table3(seed int64) Report {
	r20 := RunAutomatic(AutoConfig{Seed: seed, Freq: 20 * time.Second})
	r40 := RunAutomatic(AutoConfig{Seed: seed + 1, Freq: 40 * time.Second})

	rec := trace.NewRecorder()
	s20 := rec.Series("freq 20 s")
	for _, p := range r20.Rec.Series("consistency level").Points {
		s20.Add(p.T, p.V)
	}
	s40 := rec.Series("freq 40 s")
	for _, p := range r40.Rec.Series("consistency level").Points {
		s40.Add(p.T, p.V)
	}
	rec.SetScalar("messages @20s", float64(r20.Messages))
	rec.SetScalar("messages @40s", float64(r40.Messages))
	rec.SetScalar("mean level @20s", s20.Mean())
	rec.SetScalar("mean level @40s", s40.Mean())

	// Formula 5: per-round message cost averaged over both runs.
	totalRounds := r20.Rounds + r40.Rounds
	perRound := 0.0
	if totalRounds > 0 {
		perRound = float64(r20.Messages+r40.Messages) / float64(totalRounds)
	}
	rec.SetScalar("msgs per round (formula 5)", perRound)

	// Formula 4 worked example: b = 1 Mbps available, x% = 20 %,
	// s = 1 KB per message (the paper's assumption).
	const (
		bandwidthBps = 1_000_000.0 / 8 // bytes/sec
		share        = 0.20
		msgSize      = 1024.0
	)
	roundCost := perRound * msgSize
	optimalRate := bandwidthBps * share / roundCost // rounds per second
	rec.SetScalar("optimal rate (rounds/s)", optimalRate)

	out := section("Fig 10: automatic booking system, consistency level vs background frequency") +
		trace.SeriesTable("", s20, s40) +
		section("Table 3: overhead (resolution messages over the 100 s run)") +
		trace.Table("", []string{"frequency", "overhead (# msgs)", "rounds", "mean level"}, [][]string{
			{"20 seconds", fmt.Sprintf("%d", r20.Messages), fmt.Sprintf("%d", r20.Rounds), fmt.Sprintf("%.4f", s20.Mean())},
			{"40 seconds", fmt.Sprintf("%d", r40.Messages), fmt.Sprintf("%d", r40.Rounds), fmt.Sprintf("%.4f", s40.Mean())},
		}) +
		fmt.Sprintf("\nFormula 5: one round ≈ %.1f messages (paper: 44)\n", perRound) +
		fmt.Sprintf("Formula 4 example (b=1 Mbps, x=20%%, s=1 KB): optimal rate ≈ %.3f rounds/s (period %.1f s)\n",
			optimalRate, 1/optimalRate)
	return Report{Name: "Fig10+Table3", Rec: rec, Rendered: out}
}
