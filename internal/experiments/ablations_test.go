package experiments

import "testing"

func TestParallelPhase2Ablation(t *testing.T) {
	r := RunParallelPhase2(3)
	seq := r.Rec.Scalar("sequential @10 ms")
	par := r.Rec.Scalar("parallel @10 ms")
	if par >= seq/3 {
		t.Fatalf("parallel @10 (%.1f ms) should be far below sequential (%.1f ms)", par, seq)
	}
	if par < 50 || par > 400 {
		t.Fatalf("parallel phase 2 = %.1f ms, want ≈1 RTT", par)
	}
}

func TestTTLTradeoffAblation(t *testing.T) {
	r := RunTTLTradeoff(3)
	// Cost must grow with TTL.
	d1 := r.Rec.Scalar("ttl1 digests")
	d6 := r.Rec.Scalar("ttl6 digests")
	if d6 <= d1 {
		t.Fatalf("digests ttl6=%v should exceed ttl1=%v", d6, d1)
	}
	// Higher TTL must find the stray conflict.
	if r.Rec.Scalar("ttl6 delay s") == 0 && r.Rec.Scalar("ttl4 delay s") == 0 {
		t.Fatal("high-TTL sweep never found the bottom-layer conflict")
	}
}

func TestRefSelectorAblation(t *testing.T) {
	r := RunRefSelectors(3)
	paper := r.Rec.Scalar("highest-id (paper) worst")
	merged := r.Rec.Scalar("merged worst")
	if paper <= 0 || merged <= 0 {
		t.Fatalf("levels missing: paper=%v merged=%v", paper, merged)
	}
	// Against a merged (dominating) reference every replica is behind,
	// so the worst level cannot exceed the highest-id variant's.
	if merged > paper+1e-9 {
		t.Fatalf("merged-ref worst %.4f should not exceed highest-id %.4f", merged, paper)
	}
}

func TestSkewSensitivityAblation(t *testing.T) {
	r := RunSkewSensitivity(3)
	zero := r.Rec.Scalar("skew 0s worst")
	one := r.Rec.Scalar("skew 1s worst")
	if zero <= 0 || one <= 0 {
		t.Fatal("levels missing")
	}
	// 1 s of skew against a 300 s staleness maximum must be negligible.
	if diff := zero - one; diff > 0.05 || diff < -0.05 {
		t.Fatalf("1s skew moved the floor by %.4f; NTP assumption violated", diff)
	}
}

func TestWorkloadSensitivityAblation(t *testing.T) {
	r := RunWorkloadSensitivity(3)
	uni := r.Rec.Scalar("uniform (paper) floor")
	poi := r.Rec.Scalar("poisson floor")
	if uni <= 0 || poi <= 0 {
		t.Fatalf("floors missing: uniform=%v poisson=%v", uni, poi)
	}
	// The controller keeps the floor in the same regime (within ~10
	// points) whatever the schedule; burst dips hardest but must still
	// recover above 0.75.
	if diff := uni - poi; diff > 0.10 || diff < -0.10 {
		t.Fatalf("poisson floor %.4f too far from uniform %.4f", poi, uni)
	}
	if b := r.Rec.Scalar("burst floor"); b < 0.70 {
		t.Fatalf("burst floor %.4f; controller collapsed under bursts", b)
	}
}
