module idea

go 1.22
