module idea

go 1.21
