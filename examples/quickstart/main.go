// Quickstart: a four-node emulated IDEA deployment sharing one file.
// It walks the Fig. 3 workflow end to end: a clean write, a concurrent
// conflict detected within a WAN round trip and quantified with
// Formula 1, an explicit user demand for resolution, and the hint-based
// automatic variant.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"idea"
)

const board = idea.FileID("board")

func main() {
	nodes := []idea.NodeID{1, 2, 3, 4}
	cluster := idea.NewEmulatedCluster(idea.EmulatedClusterConfig{
		Seed:  42,
		Nodes: nodes,
		// Pin all four nodes as the board's top layer (active writers).
		TopLayers:     map[idea.FileID][]idea.NodeID{board: nodes},
		DisableGossip: true,
	})

	// White-board strokes commute: converge on the union of updates.
	for _, n := range cluster.Nodes() {
		if err := n.SetResolution(idea.MergeAll); err != nil {
			panic(err)
		}
	}

	// Watch node 1's consistency verdicts.
	cluster.Node(1).SetOnLevel(func(_ idea.Env, f idea.FileID, res idea.DetectResult) {
		fmt.Printf("   node 1 detect(%s): ok=%v level=%.4f triple=%v (%.0f ms)\n",
			f, res.OK, res.Level, res.Triple, float64(res.Elapsed)/1e6)
	})
	cluster.Node(1).SetOnResolved(func(_ idea.Env, f idea.FileID, winner idea.NodeID) {
		fmt.Printf("   node 1: %s adopted a consistent image (winner %v)\n", f, winner)
	})

	fmt.Println("1) node 1 writes — detection finds everyone behind but no conflict:")
	cluster.CallFile(0, 1, board, func(e idea.Env) {
		cluster.Node(1).Write(e, board, "draw", []byte("circle at (3,4)"), 0)
	})
	cluster.Run(2 * time.Second)

	fmt.Println("2) nodes 2 and 3 write concurrently — a real conflict forms:")
	cluster.CallFile(0, 2, board, func(e idea.Env) {
		cluster.Node(2).Write(e, board, "draw", []byte("square at (1,1)"), 0)
	})
	cluster.CallFile(0, 3, board, func(e idea.Env) {
		cluster.Node(3).Write(e, board, "draw", []byte("arrow to (9,9)"), 0)
	})
	cluster.Run(2 * time.Second)
	fmt.Println("   (no resolution yet: nobody asked, and no hint is set)")

	fmt.Println("3) the user at node 1 demands active resolution (Table 1 API):")
	cluster.CallFile(0, 1, board, func(e idea.Env) {
		cluster.Node(1).DemandActiveResolution(e, board)
	})
	cluster.Run(3 * time.Second)
	for _, nid := range nodes {
		fmt.Printf("   node %v holds %d updates\n", nid, len(cluster.Node(nid).Read(board)))
	}

	fmt.Println("4) now a 95% hint — further conflicts resolve automatically:")
	for _, n := range cluster.Nodes() {
		if err := n.SetHint(board, 0.95); err != nil {
			panic(err)
		}
	}
	for round := 0; round < 3; round++ {
		for _, nid := range []idea.NodeID{2, 4} {
			nid := nid
			cluster.CallFile(0, nid, board, func(e idea.Env) {
				cluster.Node(nid).Write(e, board, "draw", []byte("more ink"), 0)
			})
		}
		cluster.Run(5 * time.Second)
	}
	cluster.CallFile(0, 1, board, func(e idea.Env) { cluster.Node(1).ReadChecked(e, board) })
	cluster.Run(2 * time.Second)
	fmt.Printf("   node 1 level after hint-based control: %.4f\n", cluster.Node(1).Level(board))

	fmt.Printf("\ntotal protocol messages: %d (%d bytes)\n",
		cluster.Messages(), cluster.MessageBytes())
}
