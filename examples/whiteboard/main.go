// Whiteboard: the paper's synchronous-collaboration scenario (§3.1/§5.1).
// Four participants draw on a shared virtual white board; consistency is
// order-weighted (out-of-order strokes confuse readers most). One
// participant is picky: when the perceived level annoys them they
// complain, IDEA resolves immediately and learns the new acceptable level
// so the participant is not annoyed again — the adaptive interface of §2.
//
//	go run ./examples/whiteboard
package main

import (
	"fmt"
	"time"

	"idea"
	"idea/internal/apps/whiteboard"
	"idea/internal/env"
	"idea/internal/workload"
)

const board = idea.FileID("standup-board")

func main() {
	nodes := []idea.NodeID{1, 2, 3, 4}
	cluster := idea.NewEmulatedCluster(idea.EmulatedClusterConfig{
		Seed:          7,
		Nodes:         nodes,
		TopLayers:     map[idea.FileID][]idea.NodeID{board: nodes},
		DisableGossip: true,
	})

	boards := make(map[idea.NodeID]*whiteboard.Board, len(nodes))
	for _, nid := range nodes {
		b, err := whiteboard.New(cluster.Node(nid), board)
		if err != nil {
			panic(err)
		}
		boards[nid] = b
	}

	// Participant 1 is the picky one; starts with no declared tolerance
	// (pure on-demand) and a true tolerance of 0.93.
	user := &workload.User{Tolerance: 0.93, Patience: 1}

	fmt.Println("phase 1: free drawing, no consistency control — levels decay")
	for round := 1; round <= 12; round++ {
		for _, nid := range nodes {
			nid := nid
			text := fmt.Sprintf("stroke r%d by %v", round, nid)
			cluster.Call(0, nid, func(e env.Env) {
				boards[nid].Draw(e, whiteboard.Op{Kind: "draw", X: round, Y: int(nid), Text: text})
			})
		}
		cluster.Run(5 * time.Second)
		level := boards[1].Level()
		complain := user.Observe(level)
		fmt.Printf("  t=%3.0fs participant 1 sees level %.4f%s\n",
			cluster.Elapsed().Seconds(), level,
			map[bool]string{true: "  → complains!", false: ""}[complain])
		if complain {
			cluster.Call(0, 1, func(e env.Env) { boards[1].Complain(e, nil) })
			cluster.Run(2 * time.Second)
			fmt.Printf("         after complaint: level %.4f, learned floor %.4f\n",
				boards[1].Level(), cluster.Node(1).DesiredLevel(board))
		}
	}

	fmt.Printf("\nparticipant 1 complained %d time(s); IDEA now keeps the board above %.4f automatically\n",
		user.Complaints, cluster.Node(1).DesiredLevel(board))

	fmt.Println("\nphase 2: same drawing pace — no more complaints needed")
	before := user.Complaints
	for round := 13; round <= 24; round++ {
		for _, nid := range nodes {
			nid := nid
			text := fmt.Sprintf("stroke r%d by %v", round, nid)
			cluster.Call(0, nid, func(e env.Env) {
				boards[nid].Draw(e, whiteboard.Op{Kind: "draw", X: round, Y: int(nid), Text: text})
			})
		}
		cluster.Run(5 * time.Second)
		if user.Observe(boards[1].Level()) {
			cluster.Call(0, 1, func(e env.Env) { boards[1].Complain(e, nil) })
		}
	}
	fmt.Printf("  additional complaints in phase 2: %d\n", user.Complaints-before)

	ops := boards[1].View()
	fmt.Printf("\nfinal board at participant 1: %d strokes, level %.4f, %d total messages\n",
		len(ops), boards[1].Level(), cluster.Messages())
}
