// TCP cluster: the same IDEA protocol code the emulator drives, running
// over real sockets on localhost. Three live nodes share a file, two
// write conflicting updates, detection flags the conflict, and an active
// resolution converges the replicas — all over TCP.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"sync"
	"time"

	"idea"
)

const file = idea.FileID("notes")

func main() {
	all := []idea.NodeID{1, 2, 3}
	top := map[idea.FileID][]idea.NodeID{file: all}

	// Start three nodes on ephemeral ports.
	nodes := make(map[idea.NodeID]*idea.LiveNode, len(all))
	for _, nid := range all {
		ln, err := idea.NewLiveNode(idea.LiveNodeConfig{
			Self:      nid,
			Listen:    "127.0.0.1:0",
			Peers:     map[idea.NodeID]string{},
			All:       all,
			TopLayers: top,
		})
		if err != nil {
			panic(err)
		}
		nodes[nid] = ln
		defer ln.Close()
	}
	// Full mesh peer exchange.
	for _, a := range all {
		for _, b := range all {
			if a != b {
				nodes[a].AddPeer(b, nodes[b].Addr())
			}
		}
	}
	for _, nid := range all {
		fmt.Printf("node %v on %s\n", nid, nodes[nid].Addr())
	}

	// Observe node 1's verdicts (hook slots are atomically swappable, so
	// no event-loop round trip is needed).
	var mu sync.Mutex
	nodes[1].N.SetOnLevel(func(_ idea.Env, f idea.FileID, res idea.DetectResult) {
		mu.Lock()
		fmt.Printf("  node 1 detect(%s): ok=%v level=%.4f\n", f, res.OK, res.Level)
		mu.Unlock()
	})

	fmt.Println("\nconcurrent conflicting writes at nodes 1 and 2:")
	var wg sync.WaitGroup
	wg.Add(2)
	nodes[1].InjectFile(file, func(e idea.Env) {
		defer wg.Done()
		nodes[1].N.Write(e, file, "text", []byte("alpha"), 1)
	})
	nodes[2].InjectFile(file, func(e idea.Env) {
		defer wg.Done()
		nodes[2].N.Write(e, file, "text", []byte("bravo"), 2)
	})
	wg.Wait()
	time.Sleep(300 * time.Millisecond) // let detection round-trip

	fmt.Println("\nnode 3 demands active resolution:")
	nodes[3].InjectFile(file, func(e idea.Env) { nodes[3].N.DemandActiveResolution(e, file) })
	time.Sleep(500 * time.Millisecond)

	fmt.Println("\nfinal replicas:")
	for _, nid := range all {
		nid := nid
		done := make(chan int, 1)
		nodes[nid].InjectFile(file, func(e idea.Env) { done <- len(nodes[nid].N.Read(file)) })
		fmt.Printf("  node %v: %d updates\n", nid, <-done)
	}
}
