// Booking: the paper's asynchronous e-business scenario (§3.2/§5.2).
// Three wide-area booking servers sell the same 60-seat flight from
// independent local records. Without consistency control they oversell;
// with IDEA's fully-automatic background resolution — frequency derived
// from Formula 4 and tightened by oversell feedback — the records
// converge continuously and overselling is bounded.
//
//	go run ./examples/booking
package main

import (
	"fmt"
	"math/rand"
	"time"

	"idea"
	"idea/internal/apps/booking"
	"idea/internal/env"
	"idea/internal/workload"
)

const flight = idea.FileID("UA-447")

func run(auto bool) (oversold int, msgs int) {
	servers := []idea.NodeID{1, 2, 3}
	cluster := idea.NewEmulatedCluster(idea.EmulatedClusterConfig{
		Seed:          11,
		Nodes:         servers,
		TopLayers:     map[idea.FileID][]idea.NodeID{flight: servers},
		DisableGossip: true,
	})
	const seats = 60
	desks := make(map[idea.NodeID]*booking.Server, len(servers))
	var all []*booking.Server
	for _, nid := range servers {
		s, err := booking.New(cluster.Node(nid), flight, seats, 120)
		if err != nil {
			panic(err)
		}
		desks[nid] = s
		all = append(all, s)
	}

	if auto {
		ctl := &idea.AutoController{
			CapacityBps:    125_000, // 1 Mbps available
			MaxShare:       0.20,    // IDEA may use 20 %
			RoundCostBytes: 3_000,   // ≈ one collect/inform round, measured
			MinPeriod:      2 * time.Second,
		}
		cluster.Call(0, servers[0], func(e env.Env) {
			desks[servers[0]].EnableAutomatic(e, ctl, 30*time.Second)
		})
		// The other servers arm the same frequency so whichever is
		// designated initiator at fire time runs the round.
		for _, nid := range servers[1:] {
			nid := nid
			cluster.CallFile(0, nid, flight, func(e env.Env) {
				cluster.Node(nid).SetBackgroundFreq(e, flight, ctl.OptimalPeriod())
			})
		}
	}

	// Poisson ticket demand at every desk for 5 minutes.
	rng := rand.New(rand.NewSource(3))
	demand := workload.BookingDemand{Rate: 0.25, MaxSeats: 2}
	for _, nid := range servers {
		nid := nid
		times, seatCounts := demand.Requests(rng, 0, 5*time.Minute)
		for i, at := range times {
			n := seatCounts[i]
			cluster.Call(at, nid, func(e env.Env) { desks[nid].Book(e, n) })
		}
	}
	cluster.Run(5*time.Minute + 30*time.Second)

	sold := booking.GlobalSold(all)
	if sold > seats {
		oversold = sold - seats
	}
	return oversold, cluster.Messages()
}

func main() {
	fmt.Println("flight UA-447, 60 seats, 3 booking servers, 5 minutes of demand")

	over, msgs := run(false)
	fmt.Printf("\nwithout consistency control: oversold %d seats (%d messages)\n", over, msgs)

	overAuto, msgsAuto := run(true)
	fmt.Printf("with automatic IDEA control: oversold %d seats (%d messages)\n", overAuto, msgsAuto)

	fmt.Printf("\ntrade-off: %d extra messages bought %d fewer oversold seats\n",
		msgsAuto-msgs, over-overAuto)
}
