// P2P file system: the §7.3 scenario — IDEA as the consistency control of
// a peer-to-peer replicated file system (CFS/PAST-style). Twelve nodes
// form a consistent-hashing ring; each file lives on three replicas that
// double as its IDEA top layer. Clients on any node read and write any
// file; replica conflicts are detected within a round trip and resolved
// on demand.
//
//	go run ./examples/p2pfs
package main

import (
	"fmt"
	"time"

	"idea/internal/core"
	"idea/internal/env"
	"idea/internal/id"
	"idea/internal/p2pfs"
	"idea/internal/simnet"
)

func main() {
	nodes := make([]id.NodeID, 12)
	for i := range nodes {
		nodes[i] = id.NodeID(i + 1)
	}
	ring := p2pfs.NewRing(nodes, 16)
	c := simnet.New(simnet.Config{Seed: 99, Latency: simnet.WAN{}})
	fss := make(map[id.NodeID]*p2pfs.FS, len(nodes))
	for _, nid := range nodes {
		f := p2pfs.New(nid, ring, 3, core.Options{DisableGossip: true})
		fss[nid] = f
		c.Add(nid, f)
	}
	c.Start()

	const file = id.FileID("/music/album.txt")
	rs := ring.ReplicaSet(file, 3)
	fmt.Printf("file %q lives on replicas %v\n", file, rs)

	// A non-replica client writes: the op routes to the primary.
	var client id.NodeID
	for _, nid := range nodes {
		if !fss[nid].Node().Membership().IsTop(file, nid) {
			client = nid
			break
		}
	}
	fss[client].OnWriteAck = func(_ env.Env, f id.FileID, key string) {
		fmt.Printf("client %v: write to %s acknowledged as %s\n", client, f, key)
	}
	c.CallAtFile(time.Second, client, file, func(e env.Env) {
		fss[client].Write(e, file, "put", []byte("track list v1"), 1)
	})
	c.RunFor(2 * time.Second)

	// Two replicas accept concurrent direct writes — the optimistic
	// default of P2P file systems — and IDEA flags the conflict.
	fmt.Println("\ntwo replicas accept concurrent writes:")
	c.CallAtFile(time.Second, rs[1], file, func(e env.Env) {
		fss[rs[1]].Write(e, file, "put", []byte("track list v2a"), 2)
	})
	c.CallAtFile(time.Second, rs[2], file, func(e env.Env) {
		fss[rs[2]].Write(e, file, "put", []byte("track list v2b"), 3)
	})
	c.RunFor(2 * time.Second)
	fmt.Printf("replica %v perceives level %.4f\n", rs[1], fss[rs[1]].Node().Level(file))

	fmt.Println("\nresolving on demand:")
	c.CallAtFile(time.Second, rs[0], file, func(e env.Env) {
		fss[rs[0]].Node().DemandActiveResolution(e, file)
	})
	c.RunFor(3 * time.Second)
	for _, r := range rs {
		log, _ := fss[r].Read(nil, file)
		fmt.Printf("replica %v holds %d updates, level %.4f\n",
			r, len(log), fss[r].Node().Level(file))
	}

	// A remote read from the client sees the resolved state.
	fss[client].OnRead = func(_ env.Env, res p2pfs.ReadResult) {
		fmt.Printf("\nclient %v remote read: %d updates at level %.4f\n",
			client, len(res.Updates), res.Level)
	}
	c.CallAtFile(time.Second, client, file, func(e env.Env) { fss[client].Read(e, file) })
	c.RunFor(2 * time.Second)

	fmt.Printf("\ntotal messages: %d\n", c.Stats().Total())
}
