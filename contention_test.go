package idea_test

// Contention regression tests for the sharded execution runtime: the
// shard queues must stay drained under a many-writer burst (queue-wait
// p99 bounded), and the sampled queue telemetry must still record and
// settle. These pin the PR-5 contention kill — if a future change
// reintroduces a cross-shard serializer (a shared hot lock, an
// unsampled per-event observation, a writer that can't keep up), the
// wait distribution blows past the bound long before a human notices
// the throughput graph.

import (
	"testing"
	"time"
)

// TestShardQueueWaitBoundedUnderBurst drives a 4-shard node with 8
// concurrent writers bursting 64 files through the live transport and
// asserts the core.queue_wait p99 stays far below the backpressure
// horizon. The bound is deliberately loose (250 ms against a typical
// p99 of well under 10 ms) so it only trips on real contention
// regressions, not on a noisy CI neighbour.
func TestShardQueueWaitBoundedUnderBurst(t *testing.T) {
	const (
		shards       = 4
		files        = 64
		writers      = 8
		opsPerWriter = 4_000
	)
	n, tn := newBurstNode(t, shards)
	defer tn.Close()
	opsPerSec := burstWrites(t, n, tn, files, writers, opsPerWriter)
	t.Logf("burst: %.0f ops/sec over %d shards", opsPerSec, shards)

	snap := n.Metrics().Snapshot()
	qw, ok := snap.Histograms["core.queue_wait"]
	if !ok || qw.Count == 0 {
		t.Fatal("core.queue_wait recorded nothing — sampling must still observe under load")
	}
	if p99 := time.Duration(qw.P99 * float64(time.Second)); p99 > 250*time.Millisecond {
		t.Fatalf("queue-wait p99 = %v (max %v): a shard executor is not keeping up", p99, qw.Max)
	}

	// The sampled depth gauges must settle to zero once the burst is
	// drained — a frozen nonzero depth means the settle path regressed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		settled := true
		snap = n.Metrics().Snapshot()
		for name, v := range snap.Gauges {
			if len(name) >= 22 && name[:22] == "core.shard_queue_depth" && v != 0 {
				settled = false
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard queue depth gauges never settled to 0: %v", snap.Gauges)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
