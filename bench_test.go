package idea_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§6), plus the ablations DESIGN.md §3 indexes. Each bench re-runs the
// corresponding experiment end-to-end on the deterministic WAN emulator
// and reports the headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. cmd/idea-bench prints the full
// tables and series.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"idea"
	"idea/internal/core"
	"idea/internal/env"
	"idea/internal/experiments"
	"idea/internal/health"
	"idea/internal/id"
	"idea/internal/overlay"
	"idea/internal/store"
	"idea/internal/telemetry"
	"idea/internal/tracing"
	"idea/internal/transport"
	"idea/internal/vv"
	"idea/internal/wire"
)

// linearMissingFrom is the seed's O(total·log total) anti-entropy shape —
// full log scan plus sort — kept only as the reference the indexed
// implementation is measured against.
func linearMissingFrom(log []wire.Update, remote *vv.Vector) []wire.Update {
	var out []wire.Update
	for _, u := range log {
		if u.Seq > remote.Count(u.Writer) {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Writer != out[j].Writer {
			return out[i].Writer < out[j].Writer
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// newBurstNode builds the one-node live-transport fixture the parallel
// write scenarios (bench and contention regression test) share: a
// sharded core node with gossip/ransub off behind a real TCP transport
// with metrics attached.
func newBurstNode(tb testing.TB, shards int) (*core.Node, *transport.Node) {
	return newTracedBurstNode(tb, shards, tracing.Config{})
}

// newTracedBurstNode is newBurstNode with a tracing config, so the bench
// can compare the burst with tracing off against 1% sampling. The node
// runs with a group-commit-8 WAL attached — durability is the benchmarked
// default, not an unmeasured option. Mutators adjust the remaining
// options (the health-overhead burst turns the engine off this way).
func newTracedBurstNode(tb testing.TB, shards int, tc tracing.Config, mut ...func(*core.Options)) (*core.Node, *transport.Node) {
	wal, err := store.OpenWAL(tb.TempDir())
	if err != nil {
		tb.Fatal(err)
	}
	wal.SetGroupCommit(8)
	opts := core.Options{
		Membership:    overlay.NewStatic([]id.NodeID{1}, nil),
		Shards:        shards,
		DisableGossip: true,
		DisableRansub: true,
		Tracing:       tc,
		Journal:       wal,
	}
	for _, m := range mut {
		m(&opts)
	}
	n := core.NewNode(1, opts)
	tn, err := transport.Listen(1, "127.0.0.1:0", n, nil)
	if err != nil {
		tb.Fatal(err)
	}
	tn.AttachMetrics(n.Metrics())
	tn.Start()
	return n, tn
}

// parallelWriteOps drives the multi-file parallel-writer scenario through
// the real sharded runtime: one live transport node with the given shard
// count, `files` shared files, and `writers` concurrent issuers pushing
// writes (each triggering the full store-apply + detect path) through
// InjectFile. It returns steady ops/sec. With shards == 1 this is exactly
// the historical single-event-loop node — the baseline the sharded
// executor is measured against.
func parallelWriteOps(b testing.TB, shards, files, writers, opsPerWriter int) float64 {
	n, tn := newBurstNode(b, shards)
	defer tn.Close()
	return burstWrites(b, n, tn, files, writers, opsPerWriter)
}

// burstWrites issues the write burst against an already running node and
// returns steady ops/sec. Completion is tracked with a striped telemetry
// counter instead of a WaitGroup: a shared wg counter would put one
// contended atomic back on every op and measure the harness, not the
// runtime.
func burstWrites(_ testing.TB, n *core.Node, tn *transport.Node, files, writers, opsPerWriter int) float64 {
	fileIDs := make([]id.FileID, files)
	for i := range fileIDs {
		fileIDs[i] = id.FileID(fmt.Sprintf("bench-%03d", i))
	}
	payload := []byte("parallel-writer-payload")
	var issuers sync.WaitGroup
	var done telemetry.Counter
	total := int64(writers * opsPerWriter)
	start := time.Now()
	for w := 0; w < writers; w++ {
		issuers.Add(1)
		go func(w int) {
			defer issuers.Done()
			for i := 0; i < opsPerWriter; i++ {
				f := fileIDs[(i*writers+w)%len(fileIDs)]
				tn.InjectFile(f, func(e env.Env) {
					n.Write(e, f, "bench", payload, 0)
					done.Inc()
				})
			}
		}(w)
	}
	issuers.Wait()
	for done.Value() < total {
		time.Sleep(50 * time.Microsecond)
	}
	return float64(total) / time.Since(start).Seconds()
}

// percentileMs returns the q-quantile of ds in milliseconds
// (nearest-rank on the sorted slice; 0 when empty).
func percentileMs(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// traceVisibilityStats drives a fully-sampled (SampleEvery=1) hint-based
// cluster under virtual time and derives the visibility SLO numbers from
// the merged causal timelines: write-visibility latency (inject → last
// apply on any replica) and resolution latency (resolve.start →
// resolve.verdict) percentiles. Virtual time makes these deterministic
// for a given seed, so the bench gate can hold them to a tight tolerance.
func traceVisibilityStats() (visP50, visP95, visP99, resolveP99 float64, traced int) {
	cl := experiments.NewCluster(experiments.ClusterConfig{
		Seed: 11, Nodes: 12, Writers: 4, Gossip: true,
		Mutate: func(_ id.NodeID, o *core.Options) {
			o.Tracing = tracing.Config{SampleEvery: 1, BufferPerStripe: 8192}
		},
	})
	cl.Warmup()
	for _, w := range cl.Writers {
		if err := cl.Nodes[w].SetHint(experiments.SharedFile, 0.95); err != nil {
			panic(err)
		}
	}
	cl.ScheduleUniformWrites(5*time.Second, 200*time.Second)
	cl.C.RunFor(230 * time.Second)

	dumps := make([]tracing.Dump, 0, len(cl.All))
	for _, nid := range cl.All {
		dumps = append(dumps, tracing.DumpOf(cl.Nodes[nid].Tracer(), 0, ""))
	}
	var vis, res []time.Duration
	for _, tl := range tracing.Merge(dumps) {
		if d, ok := tl.Visibility(); ok {
			vis = append(vis, d)
		}
		if d, ok := tl.Resolution(); ok {
			res = append(res, d)
		}
	}
	return percentileMs(vis, 0.50), percentileMs(vis, 0.95), percentileMs(vis, 0.99),
		percentileMs(res, 0.99), len(vis)
}

// joinCatchupSeconds measures the dynamic-membership bootstrap: a seed
// node holding an `updates`-deep replica (each update carrying `payload`
// bytes of data; 0 = metadata-only), and a joiner started with nothing
// but the seed's address. It returns the wall-clock seconds from the
// joiner's start until its replica vector is equal to the seed's — the
// join handshake plus the chunked snapshot state transfer. Both nodes
// run with the group-commit WAL attached, like production.
func joinCatchupSeconds(b *testing.B, updates, writers, payload int) float64 {
	fast := &idea.MembershipConfig{
		ProbeInterval:  200 * time.Millisecond,
		ProbeTimeout:   100 * time.Millisecond,
		SuspectTimeout: 600 * time.Millisecond,
		JoinRetry:      250 * time.Millisecond,
	}
	seed, err := idea.NewLiveNode(idea.LiveNodeConfig{
		Self: 1, Listen: "127.0.0.1:0", All: []idea.NodeID{1},
		Swim: true, SwimConfig: fast, Shards: 1, WalDir: b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer seed.Close()

	var data []byte
	if payload > 0 {
		data = make([]byte, payload)
		for i := range data {
			data[i] = byte(i)
		}
	}
	// Fill the seed's replica inside the file's serialization domain.
	filled := make(chan struct{})
	seed.InjectFile("bench", func(e env.Env) {
		rep := seed.N.Store().Open("bench")
		seqs := make(map[id.NodeID]int, writers)
		for i := 0; i < updates; i++ {
			w := id.NodeID(i%writers + 2)
			seqs[w]++
			rep.Apply(wire.Update{File: "bench", Writer: w, Seq: seqs[w],
				At: vv.Stamp(i+1) * 1e6, Op: "put", Data: data})
		}
		close(filled)
	})
	<-filled
	seedVec := make(chan *vv.Vector, 1)
	seed.InjectFile("bench", func(env.Env) { seedVec <- seed.N.Store().Open("bench").Vector() })
	want := <-seedVec

	start := time.Now()
	joiner, err := idea.NewLiveNode(idea.LiveNodeConfig{
		Self: 9, Listen: "127.0.0.1:0", Join: seed.Addr(), SwimConfig: fast,
		Shards: 1, WalDir: b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer joiner.Close()
	deadline := time.Now().Add(60 * time.Second)
	for {
		got := make(chan *vv.Vector, 1)
		joiner.InjectFile("bench", func(env.Env) { got <- joiner.N.Store().Open("bench").Vector() })
		if vv.Compare(<-got, want) == vv.Equal {
			return time.Since(start).Seconds()
		}
		if time.Now().After(deadline) {
			b.Fatalf("joiner never converged to the seed's %d-update replica", updates)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// encodeAllocsPerOp measures steady-state allocations of the pooled
// encode path on the transport's hottest frame shape (an update-bearing
// Inform). The gate holds this at exactly 0: any allocation on the hot
// frame is a regression.
func encodeAllocsPerOp(b *testing.B) float64 {
	us := make([]wire.Update, 8)
	for i := range us {
		us[i] = wire.Update{File: "bench", Writer: 1, Seq: i + 1, At: 1e9, Meta: 5,
			Op: "put", Data: []byte("0123456789abcdef0123456789abcdef")}
	}
	e := wire.Envelope{From: 1, To: 2, Msg: wire.Inform{File: "bench", Token: 7,
		Winner: 2, VV: vv.New(), Updates: us}}
	// Warm the pool so the measurement sees steady state, not first-use.
	for i := 0; i < 16; i++ {
		f, err := wire.EncodeFrame(e, 4)
		if err != nil {
			b.Fatal(err)
		}
		f.Release()
	}
	return testing.AllocsPerRun(1000, func() {
		f, err := wire.EncodeFrame(e, 4)
		if err != nil {
			b.Fatal(err)
		}
		f.Release()
	})
}

// BenchmarkCoreBaseline measures the bounded-state headline numbers — the
// gossip digest wire size and Replica.MissingFrom cost at 50k updates per
// replica, the speedup over the seed's full-scan anti-entropy, the
// sharded runtime's multi-file write throughput vs the single-loop
// baseline (64 files × 16 writers, shard counts 1/2/4/8), and the
// dynamic-membership snapshot bootstrap time into a 50k-update cluster —
// and writes them to BENCH_core.json, which `idea-bench -gate` diffs
// against the committed BENCH_baseline.json in CI:
//
//	go test -run '^$' -bench CoreBaseline -benchtime 100x .
func BenchmarkCoreBaseline(b *testing.B) {
	const (
		updates = 50_000
		writers = 4
		missing = 4 // per-writer suffix the remote lacks
	)
	rep := store.NewReplica("bench", 1)
	seqs := make(map[id.NodeID]int, writers)
	for i := 0; i < updates; i++ {
		w := id.NodeID(i%writers + 2)
		seqs[w]++
		rep.Apply(wire.Update{File: "bench", Writer: w, Seq: seqs[w], At: vv.Stamp(i+1) * 1e6})
	}
	remote := rep.Vector()
	for w, n := range seqs {
		remote.TruncateWriter(w, n-missing)
	}

	// Digest wire size on a persistent gob stream: with bounded vector
	// windows this is flat in total update count.
	sizer := wire.NewSizer()
	digest := wire.GossipDigest{File: "bench", Origin: 1, Round: 1, TTL: 3, VV: rep.Vector().Trimmed(8)}
	digestBytes := sizer.Size(wire.Envelope{From: 1, To: 2, Msg: digest})

	var got []wire.Update
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got = rep.MissingFrom(remote)
	}
	b.StopTimer()
	if len(got) != writers*missing {
		b.Fatalf("missing = %d, want %d", len(got), writers*missing)
	}
	indexedNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

	// Reference: the seed's full-scan shape on the same data, sampled for
	// a fixed wall budget (it is orders of magnitude slower).
	log := rep.Log()
	legacyRounds := 0
	legacyStart := time.Now()
	for time.Since(legacyStart) < 50*time.Millisecond {
		linearMissingFrom(log, remote)
		legacyRounds++
	}
	legacyNs := float64(time.Since(legacyStart).Nanoseconds()) / float64(legacyRounds)

	// Sharded-runtime headline: multi-file write/detect throughput on one
	// live node across shard counts, 16 concurrent writers over 64 files
	// through the real transport. Every count's throughput and its
	// speedup over the single-loop baseline go into BENCH_core.json; the
	// 4-shard ratio is the headline the bench gate tracks. Parallel
	// speedup is only observable with enough cores — the recorded
	// gomaxprocs tells the gate whether to enforce the speedup floor.
	const (
		benchFiles   = 64
		benchWriters = 16
		opsPerWriter = 8_000
	)
	shardCounts := []int{1, 2, 4, 8}
	opsByShards := make(map[int]float64, len(shardCounts))
	for _, sc := range shardCounts {
		opsByShards[sc] = parallelWriteOps(b, sc, benchFiles, benchWriters, opsPerWriter)
	}
	opsSingle := opsByShards[1]
	const headlineShards = 4
	opsHeadline := opsByShards[headlineShards]

	// Tracing overhead headline: the same 4-shard burst with 1% write
	// sampling, against the tracing-off run just measured. A ratio near
	// 1.0 backs the "near-zero cost" claim; the gate holds it.
	tn2, ttn2 := newTracedBurstNode(b, headlineShards, tracing.Config{SampleEvery: 100})
	opsTraced := burstWrites(b, tn2, ttn2, benchFiles, benchWriters, opsPerWriter)
	ttn2.Close()
	tracingRatio := opsTraced / opsHeadline

	// Health overhead headline: the headline burst already runs with the
	// health engine on (its zero-value default); measure the same burst
	// with evaluation disabled and hold the on/off ratio near 1.0 — the
	// always-on claim is only honest if always-on is near-free.
	hn, htn := newTracedBurstNode(b, headlineShards, tracing.Config{},
		func(o *core.Options) { o.Health = health.Config{Disable: true} })
	opsHealthOff := burstWrites(b, hn, htn, benchFiles, benchWriters, opsPerWriter)
	htn.Close()
	healthRatio := opsHeadline / opsHealthOff

	// Visibility SLO headline: merged-timeline write-visibility and
	// resolution latency percentiles from a fully-sampled emulation.
	visP50, visP95, visP99, resolveP99, traced := traceVisibilityStats()

	// Dynamic-membership headline: seed-address-only join + snapshot
	// bootstrap into the same 50k-update scenario (metadata-only updates).
	joinSecs := joinCatchupSeconds(b, updates, writers, 0)

	// Snapshot-throughput headline: the same bootstrap with payload-bearing
	// updates — 1024 × 16KiB ≈ 16MiB, larger than both the per-chunk window
	// and the transport's maximum frame, so only the chunked streaming path
	// can move it. Reported as payload MB per second of join wall-clock.
	const (
		snapUpdates = 1024
		snapPayload = 16 << 10
	)
	snapSecs := joinCatchupSeconds(b, snapUpdates, 3, snapPayload)
	snapMBps := float64(snapUpdates) * float64(snapPayload) / float64(1<<20) / snapSecs

	// Zero-copy headline: steady-state allocations of the pooled encode
	// path. The gate tolerates exactly 0.
	encodeAllocs := encodeAllocsPerOp(b)

	b.ReportMetric(visP99, "visibility-p99-ms")
	b.ReportMetric(tracingRatio, "traced-ops-ratio")
	b.ReportMetric(healthRatio, "health-ops-ratio")
	b.ReportMetric(joinSecs, "join-catchup-s")
	b.ReportMetric(snapMBps, "snapshot-MB/s")
	b.ReportMetric(encodeAllocs, "encode-allocs/op")
	b.ReportMetric(float64(digestBytes), "digest-bytes")
	b.ReportMetric(indexedNs, "missingfrom-ns")
	b.ReportMetric(legacyNs/indexedNs, "speedup-x")
	for _, sc := range shardCounts {
		b.ReportMetric(opsByShards[sc], fmt.Sprintf("par-write-ops/s-%dshard", sc))
	}
	b.ReportMetric(opsHeadline/opsSingle, "shard-speedup-x")

	baseline := map[string]any{
		"updates_per_replica":              updates,
		"writers":                          writers,
		"missing_per_writer":               missing,
		"vv_window":                        vv.DefaultWindow,
		"digest_stamps":                    8,
		"digest_encode_bytes":              digestBytes,
		"missing_from_ns_indexed":          indexedNs,
		"missing_from_ns_full_scan":        legacyNs,
		"missing_from_speedup_x":           legacyNs / indexedNs,
		"parallel_write_files":             benchFiles,
		"parallel_write_writers":           benchWriters,
		"parallel_write_shards":            headlineShards,
		"parallel_write_speedup_x":         opsHeadline / opsSingle,
		"join_catchup_seconds":             joinSecs,
		"snapshot_payload_mb":              float64(snapUpdates) * float64(snapPayload) / float64(1<<20),
		"snapshot_mb_per_sec":              snapMBps,
		"encode_allocs_per_op":             encodeAllocs,
		"write_visibility_ms_p50":          visP50,
		"write_visibility_ms_p95":          visP95,
		"write_visibility_ms_p99":          visP99,
		"resolve_latency_ms_p99":           resolveP99,
		"traced_writes":                    traced,
		"tracing_sampled_throughput_ratio": tracingRatio,
		"health_overhead_throughput_ratio": healthRatio,
		"gomaxprocs":                       runtime.GOMAXPROCS(0),
		"num_cpu":                          runtime.NumCPU(),
		"go":                               runtime.Version(),
	}
	for _, sc := range shardCounts {
		baseline[fmt.Sprintf("parallel_write_ops_per_sec_shards_%d", sc)] = opsByShards[sc]
		if sc > 1 {
			baseline[fmt.Sprintf("parallel_write_speedup_x_shards_%d", sc)] = opsByShards[sc] / opsSingle
		}
	}
	data, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_core.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig7aHint95 regenerates Fig. 7(a): 40 nodes, 4 writers,
// updates every 5 s for 100 s, hint level 95 %.
func BenchmarkFig7aHint95(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig7a(int64(i + 1))
		b.ReportMetric(r.Rec.Scalar("lowest user level"), "lowest-level")
		b.ReportMetric(r.Rec.Scalar("resolutions"), "resolutions")
	}
}

// BenchmarkFig7bHint85 regenerates Fig. 7(b): hint level 85 %.
func BenchmarkFig7bHint85(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig7b(int64(i + 1))
		b.ReportMetric(r.Rec.Scalar("lowest user level"), "lowest-level")
		b.ReportMetric(r.Rec.Scalar("resolutions"), "resolutions")
	}
}

// BenchmarkFig8HintChange regenerates Fig. 8: 200 s with the hint reset
// from 95 % to 90 % at t = 100 s.
func BenchmarkFig8HintChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig8(int64(i + 1))
		b.ReportMetric(r.Rec.Scalar("lowest level before reset"), "floor-95")
		b.ReportMetric(r.Rec.Scalar("lowest level after reset"), "floor-90")
	}
}

// BenchmarkTable2PhaseBreakdown regenerates Table 2: the two-phase delay
// breakdown of active resolution with a 4-node top layer.
func BenchmarkTable2PhaseBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable2(int64(i + 1))
		b.ReportMetric(r.Rec.Scalar("phase1 ms (fast)"), "phase1-ms")
		b.ReportMetric(r.Rec.Scalar("phase2 ms (fast)"), "phase2-ms")
		b.ReportMetric(r.Rec.Scalar("per-member ms"), "per-member-ms")
	}
}

// BenchmarkFig9Scalability regenerates Fig. 9: measured active-resolution
// delay for top layers of 2..10 members vs the Formula 2 extrapolation.
func BenchmarkFig9Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig9(int64(i + 1))
		b.ReportMetric(r.Rec.Scalar("delay at n=10 ms"), "delay-n10-ms")
	}
}

// BenchmarkFig10Automatic regenerates Fig. 10: the automatic booking
// system at 20 s and 40 s background-resolution frequencies.
func BenchmarkFig10Automatic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig10Table3(int64(i + 1))
		b.ReportMetric(r.Rec.Scalar("mean level @20s"), "level-20s")
		b.ReportMetric(r.Rec.Scalar("mean level @40s"), "level-40s")
	}
}

// BenchmarkTable3Overhead regenerates Table 3: resolution-message
// overhead of the two Fig. 10 runs.
func BenchmarkTable3Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig10Table3(int64(i + 100))
		b.ReportMetric(r.Rec.Scalar("messages @20s"), "msgs-20s")
		b.ReportMetric(r.Rec.Scalar("messages @40s"), "msgs-40s")
	}
}

// BenchmarkFormulaDerivations regenerates the §6.2/§6.3.2 formula
// parameters: the per-member cost behind Formulas 2/3 and the per-round
// message count behind Formulas 4/5.
func BenchmarkFormulaDerivations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2 := experiments.RunTable2(int64(i + 1))
		f10 := experiments.RunFig10Table3(int64(i + 1))
		b.ReportMetric(t2.Rec.Scalar("per-member ms"), "formula2-slope-ms")
		b.ReportMetric(f10.Rec.Scalar("msgs per round (formula 5)"), "formula5-msgs")
		b.ReportMetric(f10.Rec.Scalar("optimal rate (rounds/s)"), "formula4-rate")
	}
}

// BenchmarkFig2Tradeoff measures the Fig. 2 positioning: IDEA between
// optimistic and strong consistency on both axes.
func BenchmarkFig2Tradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2Tradeoff(int64(i + 1))
		b.ReportMetric(r.Rec.Scalar("IDEA (hint 95%) messages"), "idea-msgs")
		b.ReportMetric(r.Rec.Scalar("optimistic (AE 30s) messages"), "opt-msgs")
		b.ReportMetric(r.Rec.Scalar("strong (primary copy) messages"), "strong-msgs")
	}
}

// BenchmarkTopLayerCapture measures the §4.3 top-layer capture claim
// (>95 %).
func BenchmarkTopLayerCapture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunTopLayerCapture(int64(i+1), 0.05)
		b.ReportMetric(r.Rec.Scalar("capture rate"), "capture")
	}
}

// BenchmarkRollback measures the §4.4.2 rollback path: discrepancy delay
// and operations undone.
func BenchmarkRollback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunRollback(int64(i + 1))
		b.ReportMetric(r.Rec.Scalar("rollback delay s"), "delay-s")
		b.ReportMetric(r.Rec.Scalar("undone ops"), "undone")
	}
}

// BenchmarkBoundsLearning measures the §5.2 undersell/oversell frequency
// bounds learning.
func BenchmarkBoundsLearning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunBoundsLearning(int64(i + 1))
		b.ReportMetric(r.Rec.Scalar("final period s"), "period-s")
	}
}

// BenchmarkParallelPhase2 measures the §6.2 parallel-phase-2 ablation:
// sequential vs parallel collect at top-layer sizes up to 10.
func BenchmarkParallelPhase2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunParallelPhase2(int64(i + 1))
		b.ReportMetric(r.Rec.Scalar("sequential @10 ms"), "seq-n10-ms")
		b.ReportMetric(r.Rec.Scalar("parallel @10 ms"), "par-n10-ms")
	}
}

// BenchmarkTTLTradeoff measures the §4.4.2 accuracy/responsiveness/cost
// trade-off of the TTL-bounded bottom-layer sweep.
func BenchmarkTTLTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunTTLTradeoff(int64(i + 1))
		b.ReportMetric(r.Rec.Scalar("ttl1 digests"), "digests-ttl1")
		b.ReportMetric(r.Rec.Scalar("ttl6 digests"), "digests-ttl6")
	}
}

// BenchmarkRefSelectors compares reference-consistent-state choices.
func BenchmarkRefSelectors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunRefSelectors(int64(i + 1))
		b.ReportMetric(r.Rec.Scalar("highest-id (paper) worst"), "paper-worst")
		b.ReportMetric(r.Rec.Scalar("merged worst"), "merged-worst")
	}
}

// BenchmarkSkewSensitivity validates the NTP clock assumption.
func BenchmarkSkewSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunSkewSensitivity(int64(i + 1))
		b.ReportMetric(r.Rec.Scalar("skew 0s worst"), "skew0-worst")
		b.ReportMetric(r.Rec.Scalar("skew 20s worst"), "skew20-worst")
	}
}

// BenchmarkWorkloadSensitivity re-runs the hint experiment under Poisson
// and bursty schedules — the §6 uniform-workload assumption is not
// load-bearing.
func BenchmarkWorkloadSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunWorkloadSensitivity(int64(i + 1))
		b.ReportMetric(r.Rec.Scalar("uniform (paper) floor"), "uniform-floor")
		b.ReportMetric(r.Rec.Scalar("poisson floor"), "poisson-floor")
	}
}

// BenchmarkDetectionRoundTrip microbenchmarks the detect(update) hot path
// on a 4-writer top layer (one full write+detect cycle under emulated
// WAN latency).
func BenchmarkDetectionRoundTrip(b *testing.B) {
	r := experiments.RunHint(experiments.HintConfig{
		Seed: 1, Nodes: 8, Duration: 20 * time.Second, Hint: 0, // no resolution
	})
	_ = r
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunHint(experiments.HintConfig{
			Seed: int64(i + 1), Nodes: 8, Duration: 20 * time.Second, Hint: 0,
		})
	}
}
