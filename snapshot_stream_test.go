package idea_test

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"idea"
	"idea/internal/env"
	"idea/internal/id"
	"idea/internal/vv"
	"idea/internal/wire"
)

// TestSnapshotStreamLargeBootstrap is the chunked-transfer regression
// test: a joiner bootstraps from a seed whose replica is larger than the
// transport's maximum frame (and than the per-chunk update/byte
// windows), which only the streaming snapshot path can move at all — the
// old monolithic SnapshotFileReply would exceed MaxFrame and never
// arrive. The result must be byte-equivalent to the seed's replica, and
// the process's heap spike during the transfer must stay bounded by the
// store size, not a multiple of it.
func TestSnapshotStreamLargeBootstrap(t *testing.T) {
	if testing.Short() {
		t.Skip("moves ~24MiB over loopback")
	}
	const (
		updates = 1536     // > the 512-update chunk window
		payload = 16 << 10 // 16KiB each → ~24MiB total, > transport MaxFrame (16MiB)
	)
	fast := &idea.MembershipConfig{
		ProbeInterval:  200 * time.Millisecond,
		ProbeTimeout:   100 * time.Millisecond,
		SuspectTimeout: 600 * time.Millisecond,
		JoinRetry:      250 * time.Millisecond,
	}
	seed, err := idea.NewLiveNode(idea.LiveNodeConfig{
		Self: 1, Listen: "127.0.0.1:0", All: []idea.NodeID{1},
		Swim: true, SwimConfig: fast, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()

	data := make([]byte, payload)
	for i := range data {
		data[i] = byte(i)
	}
	filled := make(chan struct{})
	seed.InjectFile("big", func(env.Env) {
		rep := seed.N.Store().Open("big")
		seqs := make(map[id.NodeID]int)
		for i := 0; i < updates; i++ {
			w := id.NodeID(i%3 + 2)
			seqs[w]++
			rep.Apply(wire.Update{File: "big", Writer: w, Seq: seqs[w],
				At: vv.Stamp(i+1) * 1e6, Op: "put", Data: data})
		}
		close(filled)
	})
	<-filled
	type seedState struct {
		vec *vv.Vector
		log []wire.Update
	}
	seedCh := make(chan seedState, 1)
	seed.InjectFile("big", func(env.Env) {
		rep := seed.N.Store().Open("big")
		seedCh <- seedState{rep.Vector(), rep.Log()}
	})
	want := <-seedCh

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc

	joiner, err := idea.NewLiveNode(idea.LiveNodeConfig{
		Self: 9, Listen: "127.0.0.1:0", Join: seed.Addr(), SwimConfig: fast, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()

	const storeBytes = updates * payload
	var peak uint64
	deadline := time.Now().Add(60 * time.Second)
	for {
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
		got := make(chan *vv.Vector, 1)
		joiner.InjectFile("big", func(env.Env) { got <- joiner.N.Store().Open("big").Vector() })
		if vv.Compare(<-got, want.vec) == vv.Equal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("joiner never converged; chunked snapshot transfer is broken " +
				"(the store exceeds MaxFrame, so only streaming can move it)")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Byte equivalence: identical vector (checked above), identical log.
	logCh := make(chan []wire.Update, 1)
	joiner.InjectFile("big", func(env.Env) { logCh <- joiner.N.Store().Open("big").Log() })
	gotLog := <-logCh
	if len(gotLog) != len(want.log) {
		t.Fatalf("joiner log has %d updates, seed has %d", len(gotLog), len(want.log))
	}
	if !reflect.DeepEqual(gotLog, want.log) {
		t.Fatal("joiner log differs from seed log after chunked bootstrap")
	}

	// Peak-memory bound: the joiner's own copy of the store is ~storeBytes;
	// the in-flight window adds O(chunk). A monolithic transfer would spike
	// several multiples of storeBytes (encode frame + decode copy + updates
	// slice). Allow the copy plus generous slack for the runtime.
	if limit := baseline + 2*storeBytes; peak > limit {
		t.Fatalf("heap peaked at %dMiB (baseline %dMiB) — more than baseline+2×store (%dMiB); "+
			"snapshot transfer is not streaming", peak>>20, baseline>>20, limit>>20)
	}
}
