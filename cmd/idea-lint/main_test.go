package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the idea-lint binary once per test run.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "idea-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building idea-lint: %v\n%s", err, out)
	}
	return bin
}

// scratchModule writes a throwaway module with the given files and
// returns its root directory.
func scratchModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runLint runs the built binary against pkgs inside dir, returning
// combined output and the exit code.
func runLint(t *testing.T, bin, dir string, pkgs ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, pkgs...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running idea-lint: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := buildLint(t)

	t.Run("clean tree exits zero", func(t *testing.T) {
		dir := scratchModule(t, map[string]string{
			"clean/clean.go": "package clean\n\nfunc Add(a, b int) int { return a + b }\n",
		})
		out, code := runLint(t, bin, dir, "./...")
		if code != 0 {
			t.Fatalf("want exit 0 on clean tree, got %d:\n%s", code, out)
		}
	})

	t.Run("violation exits nonzero and names the rule", func(t *testing.T) {
		dir := scratchModule(t, map[string]string{
			"detect/detect.go": "package detect\n\nimport \"time\"\n\n" +
				"func Stamp() int64 { return time.Now().UnixNano() }\n",
		})
		out, code := runLint(t, bin, dir, "./...")
		if code == 0 {
			t.Fatalf("want nonzero exit on seeded violation, got 0:\n%s", out)
		}
		if !strings.Contains(out, "time.Now") || !strings.Contains(out, "simnet replay") {
			t.Fatalf("diagnostic should mention time.Now and the replay invariant:\n%s", out)
		}
	})

	t.Run("allow directive suppresses back to zero", func(t *testing.T) {
		dir := scratchModule(t, map[string]string{
			"detect/detect.go": "package detect\n\nimport \"time\"\n\n" +
				"func Stamp() int64 {\n" +
				"\t//idealint:allow determinism boot-time wall clock, never replayed\n" +
				"\treturn time.Now().UnixNano()\n}\n",
		})
		out, code := runLint(t, bin, dir, "./...")
		if code != 0 {
			t.Fatalf("want exit 0 with allow directive, got %d:\n%s", code, out)
		}
	})

	t.Run("reasonless directive does not suppress", func(t *testing.T) {
		dir := scratchModule(t, map[string]string{
			"detect/detect.go": "package detect\n\nimport \"time\"\n\n" +
				"func Stamp() int64 {\n" +
				"\t//idealint:allow determinism\n" +
				"\treturn time.Now().UnixNano()\n}\n",
		})
		out, code := runLint(t, bin, dir, "./...")
		if code == 0 {
			t.Fatalf("want nonzero exit for reasonless directive, got 0:\n%s", out)
		}
		if !strings.Contains(out, "needs a reason") {
			t.Fatalf("diagnostic should explain the missing reason:\n%s", out)
		}
	})
}
