// Command idea-lint runs the invariant analyzer suite (internal/lint)
// over the tree. It speaks two protocols:
//
//   - invoked by the go build system as a vet tool (go vet
//     -vettool=$(command -v idea-lint) ./...), it acts as a
//     unitchecker: the go command hands it one package at a time with
//     full export data, caching results like any other vet run;
//   - invoked directly with package patterns (idea-lint ./...), it
//     re-executes itself through `go vet -vettool=<self>` so the same
//     loading, caching, and exit-code behaviour applies without a
//     second driver implementation.
//
// Exit status is 0 on a clean tree and nonzero when any analyzer
// reports an unsuppressed finding (or the build fails). Findings are
// suppressed only by an //idealint:allow <analyzer> <reason> directive
// on the offending line or the line above it.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"idea/internal/lint"
)

func main() {
	// The go command drives vet tools with -V=full / -flags probes and
	// then one <unit>.cfg argument per package; hand any of those
	// straight to the unitchecker.
	for _, arg := range os.Args[1:] {
		if strings.HasSuffix(arg, ".cfg") || strings.HasPrefix(arg, "-V=") || arg == "-flags" {
			unitchecker.Main(lint.Analyzers()...) // never returns
		}
	}

	// Direct invocation: relaunch through go vet with ourselves as the
	// vettool, forwarding package patterns and analyzer flags verbatim.
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "idea-lint: %v\n", err)
		os.Exit(2)
	}
	args := append([]string{"vet", "-vettool=" + exe}, os.Args[1:]...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "idea-lint: running go vet: %v\n", err)
		os.Exit(2)
	}
}
