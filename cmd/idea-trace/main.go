// Command idea-trace stitches per-node causal-tracing journals into
// cluster-wide timelines. It pulls /trace dumps from live admin
// endpoints (or reads dump files collected earlier), estimates clock
// skew between live nodes from matched send/receive span pairs, and
// prints each sampled write's causally ordered tree — inject →
// wal.append → digest/detect hops → apply → resolve.verdict — with its
// derived write-visibility and resolution latency. With -o it also
// writes the merged timeline in the Chrome trace-event format, loadable
// in chrome://tracing or Perfetto.
//
// Usage:
//
//	idea-trace -nodes http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003
//	idea-trace -trace 0xdeadbeef -o timeline.json dumps/n1.json dumps/n2.json
//
// A dump file is the JSON a node serves on /trace (curl it during a
// run; the nightly soak workflow collects one per node).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"idea/internal/tracing"
)

func main() {
	nodes := flag.String("nodes", "", "comma-separated admin base URLs to pull /trace dumps from")
	traceID := flag.String("trace", "", "only this trace ID (decimal or 0x-hex)")
	file := flag.String("file", "", "only traces touching this file")
	out := flag.String("o", "", "write merged Chrome trace-event JSON to this path")
	quiet := flag.Bool("q", false, "suppress the per-trace tree view (summary line only)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-node fetch timeout")
	flag.Parse()

	var filterTrace uint64
	if *traceID != "" {
		v, err := strconv.ParseUint(*traceID, 0, 64)
		if err != nil {
			fatalf("-trace %q: %v", *traceID, err)
		}
		filterTrace = v
	}

	var dumps []tracing.Dump
	if *nodes != "" {
		client := &http.Client{Timeout: *timeout}
		for _, base := range strings.Split(*nodes, ",") {
			base = strings.TrimSpace(base)
			if base == "" {
				continue
			}
			d, err := fetch(client, base, *traceID, *file)
			if err != nil {
				fatalf("%s: %v", base, err)
			}
			dumps = append(dumps, d)
		}
	}
	for _, path := range flag.Args() {
		d, err := readDump(path)
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		dumps = append(dumps, d)
	}
	if len(dumps) == 0 {
		fatalf("no inputs: pass -nodes URLs and/or dump files (see -h)")
	}

	timelines := tracing.Merge(dumps)
	// File/trace filters re-applied locally so dump files behave like
	// live endpoints.
	var kept []tracing.Timeline
	for _, tl := range timelines {
		if filterTrace != 0 && tl.Trace != filterTrace {
			continue
		}
		if *file != "" && !touches(tl, *file) {
			continue
		}
		kept = append(kept, tl)
	}

	var dropped uint64
	for _, d := range dumps {
		dropped += d.Dropped
	}
	fmt.Printf("%d node journal(s), %d trace(s)", len(dumps), len(kept))
	if dropped > 0 {
		fmt.Printf(" (%d events overwritten before export — raise BufferPerStripe or lower sampling)", dropped)
	}
	fmt.Println()
	for _, tl := range kept {
		if *quiet {
			fmt.Printf("trace %016x  events=%d  nodes=%v\n", tl.Trace, len(tl.Events), tl.Nodes())
			continue
		}
		fmt.Println(tl.Tree())
	}

	if *out != "" {
		raw, err := tracing.ChromeTrace(kept)
		if err != nil {
			fatalf("chrome export: %v", err)
		}
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Printf("wrote %s (%d bytes) — open in chrome://tracing or https://ui.perfetto.dev\n", *out, len(raw))
	}
}

func fetch(client *http.Client, base, traceID, file string) (tracing.Dump, error) {
	url := strings.TrimSuffix(base, "/") + "/trace"
	var params []string
	if traceID != "" {
		params = append(params, "trace="+traceID)
	}
	if file != "" {
		params = append(params, "file="+file)
	}
	if len(params) > 0 {
		url += "?" + strings.Join(params, "&")
	}
	resp, err := client.Get(url)
	if err != nil {
		return tracing.Dump{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return tracing.Dump{}, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var d tracing.Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return tracing.Dump{}, fmt.Errorf("decode %s: %w", url, err)
	}
	return d, nil
}

func readDump(path string) (tracing.Dump, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return tracing.Dump{}, err
	}
	var d tracing.Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		return tracing.Dump{}, fmt.Errorf("not a /trace dump: %w", err)
	}
	return d, nil
}

func touches(tl tracing.Timeline, file string) bool {
	for _, e := range tl.Events {
		if string(e.File) == file {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "idea-trace: "+format+"\n", args...)
	os.Exit(1)
}
