// Command idea-plan lists and runs scenario plans — the declarative
// fault/workload/assertion documents of internal/plans. With no flags it
// lists the registry; -run executes every plan matching a name regexp
// (further narrowed by -tag) on the deterministic simnet emulator and
// exits nonzero if any assertion fails. Each run can emit its timeline
// JSON — the byte-reproducible artifact a failing nightly replays from.
//
//	go run ./cmd/idea-plan                         # list the catalog
//	go run ./cmd/idea-plan -json                   # full plan documents
//	go run ./cmd/idea-plan -run .                  # run everything
//	go run ./cmd/idea-plan -run . -tag smoke       # the tier-1 subset
//	go run ./cmd/idea-plan -run churn -seed 9      # replay under a seed
//	go run ./cmd/idea-plan -run . -out plan-out    # write timeline JSONs
//	go run ./cmd/idea-plan -run . -tag live -live  # live TCP rig instead
//
// docs/PLAN_AUTHORING.md documents the plan schema and vocabulary;
// docs/RUNBOOK.md covers reading the timelines operationally.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
	"time"

	"idea/internal/plans"
)

// runList renders the matching plans as a table (or, asJSON, the full
// plan documents) and returns how many matched.
func runList(w io.Writer, pattern, tag string, asJSON bool) (int, error) {
	ps, err := plans.Match(pattern, tag)
	if err != nil {
		return 0, err
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return len(ps), enc.Encode(ps)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PLAN\tTAGS\tNODES\tDURATION\tFAULTS\tDESCRIPTION")
	for _, p := range ps {
		kinds := make([]string, 0, len(p.Faults))
		for _, f := range p.Faults {
			kinds = append(kinds, f.Kind)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%v\t%s\t%s\n",
			p.Name, strings.Join(p.Tags, ","), p.Topology.Nodes,
			time.Duration(p.Workload.Duration), strings.Join(kinds, ","), p.Description)
	}
	tw.Flush()
	return len(ps), nil
}

// runPlans executes every matching plan and reports per-assertion
// results; failed is how many plans failed their contract. When out is
// non-empty each plan's timeline JSON is written to <out>/<name>.json
// (live runs additionally drop the soak artifact set under
// <out>/<name>/).
func runPlans(w io.Writer, pattern, tag string, seed int64, out string, live bool, duration time.Duration) (failed int, err error) {
	ps, err := plans.Match(pattern, tag)
	if err != nil {
		return 0, err
	}
	if len(ps) == 0 {
		return 0, fmt.Errorf("no plans match -run %q -tag %q", pattern, tag)
	}
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return 0, err
		}
	}
	for _, p := range ps {
		if live && !p.Live() {
			fmt.Fprintf(w, "SKIP %s (not live-injectable)\n", p.Name)
			continue
		}
		var (
			tl     *plans.Timeline
			runErr error
		)
		if live {
			artifacts := ""
			if out != "" {
				artifacts = filepath.Join(out, p.Name)
			}
			tl, runErr = plans.RunLive(p, seed, duration, artifacts)
		} else {
			tl, runErr = plans.RunSim(p, seed, "")
		}
		if runErr != nil {
			fmt.Fprintf(w, "FAIL %s: %v\n", p.Name, runErr)
			failed++
			continue
		}
		verdict := "PASS"
		if !tl.Pass {
			verdict = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "%s %s  seed=%d  %s  ops=%d  events=%d\n",
			verdict, p.Name, tl.Seed, time.Duration(tl.DurationMs)*time.Millisecond,
			tl.Report.Ops, len(tl.Events))
		for _, a := range tl.Assertions {
			mark := "ok"
			if !a.OK {
				mark = "FAILED"
			}
			fmt.Fprintf(w, "  %-24s %-6s %s\n", a.Name, mark, a.Detail)
		}
		if out != "" {
			data, err := json.MarshalIndent(tl, "", "  ")
			if err != nil {
				return failed, err
			}
			path := filepath.Join(out, p.Name+".json")
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				return failed, err
			}
			fmt.Fprintf(w, "  timeline: %s\n", path)
		}
	}
	return failed, nil
}

func main() {
	run := flag.String("run", "", "run every plan whose name matches this regexp (empty: list instead)")
	tag := flag.String("tag", "", "restrict to plans carrying this tag (smoke, nightly, live)")
	seed := flag.Int64("seed", 0, "replay seed override (0 keeps each plan's own seed)")
	out := flag.String("out", "", "directory for per-plan timeline JSON artifacts")
	live := flag.Bool("live", false, "execute on the live TCP rig instead of the simnet emulator (live-tagged plans only)")
	duration := flag.Duration("duration", 0, "stretch the workload window (live runs; 0 keeps each plan's own)")
	asJSON := flag.Bool("json", false, "list as full plan JSON documents")
	flag.Parse()

	if *run == "" {
		n, err := runList(os.Stdout, "", *tag, *asJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if n == 0 {
			fmt.Fprintln(os.Stderr, "no plans registered")
			os.Exit(2)
		}
		return
	}
	failed, err := runPlans(os.Stdout, *run, *tag, *seed, *out, *live, *duration)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d plan(s) failed\n", failed)
		os.Exit(1)
	}
}
