package main

// CLI-level coverage in the idea-bench style: tests call the testable
// package-level functions directly with an in-memory writer instead of
// shelling out, so list/run/filter/failure paths are exercised without
// process spawning. The sim runs here are real deterministic simnet
// executions of catalog plans, so this doubles as a smoke test that the
// CLI wiring (seed override, artifact writing, exit accounting) agrees
// with internal/plans.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"idea/internal/loadgen"
	"idea/internal/plans"
)

func init() {
	// A plan that cannot pass: the ops floor is absurd. Registered here
	// (not in the catalog) so only this test binary sees it; it exists to
	// exercise the failed-plan accounting behind the nonzero exit path.
	plans.Register(plans.Plan{
		Name:        "cli-impossible",
		Description: "test-only plan with an unreachable ops floor",
		Tags:        []string{"cli-test"},
		Seed:        3,
		Topology: plans.Topology{
			Nodes:   3,
			Files:   1,
			Latency: "lan",
		},
		Workload: plans.Workload{
			Rate:     5,
			Duration: plans.Duration(10 * time.Second),
			Mix:      loadgen.Mix{Write: 1},
			PreHint:  0.9,
		},
		Assert: plans.Assertions{
			MinOps: 1 << 30,
		},
	})
}

func TestListTable(t *testing.T) {
	var b strings.Builder
	n, err := runList(&b, "", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if n < 5 {
		t.Fatalf("expected at least the 5 catalog plans, listed %d", n)
	}
	out := b.String()
	for _, want := range []string{"PLAN", "partition-heal-stall", "churn-kill-rejoin", "wal-torn-log", "nightly"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestListJSON(t *testing.T) {
	var b strings.Builder
	n, err := runList(&b, "", "smoke", true)
	if err != nil {
		t.Fatal(err)
	}
	var ps []plans.Plan
	if err := json.Unmarshal([]byte(b.String()), &ps); err != nil {
		t.Fatalf("list -json is not valid plan JSON: %v\n%s", err, b.String())
	}
	if len(ps) != n {
		t.Fatalf("listed %d but decoded %d plans", n, len(ps))
	}
	for _, p := range ps {
		if !p.HasTag("smoke") {
			t.Errorf("plan %s leaked through the smoke tag filter (tags %v)", p.Name, p.Tags)
		}
	}
}

func TestListFilterByPattern(t *testing.T) {
	var b strings.Builder
	n, err := runList(&b, "^churn-", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !strings.Contains(b.String(), "churn-kill-rejoin") {
		t.Fatalf("^churn- should match exactly churn-kill-rejoin, got %d:\n%s", n, b.String())
	}
}

func TestRunGreenPlanWritesTimeline(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	failed, err := runPlans(&b, "^partition-heal-stall$", "", 0, dir, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("partition-heal-stall should pass, %d failed:\n%s", failed, b.String())
	}
	if !strings.Contains(b.String(), "PASS partition-heal-stall") {
		t.Errorf("missing PASS line:\n%s", b.String())
	}

	data, err := os.ReadFile(filepath.Join(dir, "partition-heal-stall.json"))
	if err != nil {
		t.Fatalf("timeline artifact not written: %v", err)
	}
	var tl plans.Timeline
	if err := json.Unmarshal(data, &tl); err != nil {
		t.Fatalf("timeline artifact is not valid JSON: %v", err)
	}
	if !tl.Pass || tl.Plan != "partition-heal-stall" || len(tl.Events) == 0 {
		t.Errorf("timeline artifact incoherent: pass=%v plan=%q events=%d", tl.Pass, tl.Plan, len(tl.Events))
	}
}

func TestRunSeedOverride(t *testing.T) {
	var b strings.Builder
	failed, err := runPlans(&b, "^partition-heal-stall$", "", 99, "", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("plan should still pass under seed 99:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "seed=99") {
		t.Errorf("seed override not reflected in output:\n%s", b.String())
	}
}

func TestRunFailingPlanCountsAsFailed(t *testing.T) {
	var b strings.Builder
	failed, err := runPlans(&b, "^cli-impossible$", "", 0, "", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Fatalf("cli-impossible must fail exactly once, got %d:\n%s", failed, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "FAIL cli-impossible") || !strings.Contains(out, "min_ops") {
		t.Errorf("failure output should name the plan and the failed assertion:\n%s", out)
	}
}

func TestRunNoMatchIsAnError(t *testing.T) {
	var b strings.Builder
	if _, err := runPlans(&b, "^no-such-plan$", "", 0, "", false, 0); err == nil {
		t.Fatal("expected an error when no plans match")
	}
	if _, err := runPlans(&b, "(", "", 0, "", false, 0); err == nil {
		t.Fatal("expected an error for an invalid regexp")
	}
}

func TestRunLiveSkipsNonLivePlans(t *testing.T) {
	var b strings.Builder
	failed, err := runPlans(&b, "^partition-heal-stall$", "", 0, "", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 || !strings.Contains(b.String(), "SKIP partition-heal-stall") {
		t.Fatalf("-live must skip sim-only plans without failing them:\n%s", b.String())
	}
}
