// Command idea-load drives a live IDEA cluster at scale: it joins the
// deployment as one more node (any node may write), issues a configurable
// mix of write/read/hint/resolve operations against the shared files, and
// reports ops/sec plus p50/p95/p99 latency per operation. Write latency
// is the full detection round trip as the writer observes it; resolve
// latency is the initiator-side session duration.
//
// Against the 3-node cluster of the README quickstart:
//
//	idea-load -id 100 -listen 127.0.0.1:0 \
//	          -peers 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003 \
//	          -all 1,2,3,100 -top f=1,2,3 -files f \
//	          -duration 30s -rate 50 -ramp 5s -mix write=8,read=2
//
// Closed-loop mode (no -rate) runs -workers concurrent issuers that each
// wait for their write's detection verdict. With -admin the driver also
// serves its own /metrics + /healthz, exposing the run's histograms live.
//
// With -join <seed-addr> the driver needs no -peers/-all: it joins the
// live cluster through the seed (dynamic membership) and bootstraps via
// snapshot transfer before driving load. SIGINT/SIGTERM stops the driver
// gracefully: outstanding verdicts drain, the final report prints, the
// node announces leave and closes cleanly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"idea"
	"idea/internal/cliutil"
	"idea/internal/loadgen"
)

func main() {
	idFlag := flag.Int64("id", 100, "node ID the driver joins the cluster as")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	peers := flag.String("peers", "", "comma-separated id=addr peer list")
	allFlag := flag.String("all", "", "comma-separated node IDs of the full deployment")
	top := flag.String("top", "", "comma-separated file=ids top-layer pins, e.g. f=1,2;g=2,3")
	files := flag.String("files", "f", "comma-separated shared files to target")
	duration := flag.Duration("duration", 30*time.Second, "how long to issue operations")
	rate := flag.Float64("rate", 0, "open-loop target ops/sec (0 = closed loop)")
	ramp := flag.Duration("ramp", 0, "open-loop ramp-up window")
	workers := flag.Int("workers", 4, "closed-loop concurrency")
	mix := flag.String("mix", "write=1", "op mix, e.g. write=8,read=2,hint=1,resolve=1")
	zipf := flag.Float64("zipf", 0, "zipf skew over -files (>1 skews; 0 = uniform)")
	payload := flag.Int("payload", 64, "write payload bytes")
	seed := flag.Int64("seed", 1, "deterministic op/file draws")
	shards := flag.Int("shards", 0, "driver node's per-file serialization domains (0 = one per CPU, 1 = classic single loop)")
	swim := flag.Bool("swim", false, "dynamic membership: SWIM failure detection + live join/leave")
	join := flag.String("join", "", "seed address to join the cluster (implies -swim; -peers/-all not needed)")
	traceEvery := flag.Int("trace-every", 0, "sample 1 in N of the driver's writes for causal tracing (0 = off)")
	admin := flag.String("admin", "", "serve /metrics + /healthz on this address")
	jsonOut := flag.Bool("json", false, "print the report as JSON")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "settle time before driving load")
	verbose := flag.Bool("v", false, "verbose transport logging")
	flag.Parse()

	peerMap, err := cliutil.ParsePeers(*peers)
	if err != nil {
		fatalf("-peers: %v", err)
	}
	allIDs, err := cliutil.ParseIDs(*allFlag)
	if err != nil {
		fatalf("-all: %v", err)
	}
	tops, err := cliutil.ParseTops(*top)
	if err != nil {
		fatalf("-top: %v", err)
	}
	w, r, h, res, err := cliutil.ParseMix(*mix)
	if err != nil {
		fatalf("-mix: %v", err)
	}
	fileIDs := cliutil.ParseFiles(*files)
	if len(fileIDs) == 0 {
		fatalf("-files must name at least one file")
	}

	cfg := idea.LiveNodeConfig{
		Self:      idea.NodeID(*idFlag),
		Listen:    *listen,
		Peers:     peerMap,
		All:       allIDs,
		TopLayers: tops,
		Shards:    *shards,
		Swim:      *swim,
		Join:      *join,
		Tracing:   idea.TracingConfig{SampleEvery: *traceEvery},
	}
	if len(cfg.All) == 0 {
		cfg.All = cliutil.DefaultAll(cfg.Self, cfg.Peers)
	}
	if *verbose {
		cfg.Logger = log.New(os.Stderr, "idea-load ", log.LstdFlags|log.Lmicroseconds)
	}
	node, err := idea.NewLiveNode(cfg)
	if err != nil {
		fatalf("start: %v", err)
	}
	defer node.Close()
	fmt.Fprintf(os.Stderr, "idea-load: node %v on %s (%d shard(s)) driving %d peer(s)\n",
		cfg.Self, node.Addr(), node.NumShards(), len(peerMap))

	if *admin != "" {
		srv, err := idea.ServeNodeAdmin(*admin, node.N)
		if err != nil {
			fatalf("admin: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "idea-load: admin on http://%s/metrics\n", srv.Addr())
	}
	time.Sleep(*warmup)

	// Graceful shutdown: SIGINT/SIGTERM stops the driver, which drains
	// outstanding verdicts and falls through to the final report; the
	// deferred Close (after a leave announcement) flushes the node.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "idea-load: %v: stopping driver\n", s)
		close(stop)
	}()
	defer node.Leave(2 * time.Second)

	// SIGQUIT dumps the driver node's flight recorder to stderr and keeps
	// driving — the mid-run "what is it doing" probe.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			dump := idea.FlightDumpOf(node.N)
			fmt.Fprintf(os.Stderr, "idea-load: SIGQUIT: flight recorder (%d events, %d dropped)\n",
				len(dump.Events), dump.Dropped)
			enc := json.NewEncoder(os.Stderr)
			enc.SetIndent("", "  ")
			enc.Encode(dump)
		}
	}()

	rep := loadgen.RunLive(loadgen.Config{
		Seed:         *seed,
		Duration:     *duration,
		Rate:         *rate,
		RampUp:       *ramp,
		Workers:      *workers,
		Mix:          loadgen.Mix{Write: w, Read: r, Hint: h, Resolve: res},
		Files:        fileIDs,
		ZipfSkew:     *zipf,
		PayloadBytes: *payload,
		Stop:         stop,
	}, node.N, node, node.Metrics())

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatalf("encode: %v", err)
		}
		return
	}
	fmt.Print(rep)
	fmt.Print(shardSplit(rep, node))
}

// shardSplit renders the per-shard throughput split: measured ops grouped
// by the driver shard owning each target file. It shows at a glance
// whether the workload actually spreads across the sharded runtime or
// piles onto one domain (e.g. under a heavy zipf skew).
func shardSplit(rep *loadgen.Report, node *idea.LiveNode) string {
	n := node.NumShards()
	if n <= 1 || len(rep.FileOps) == 0 || rep.Elapsed <= 0 {
		return ""
	}
	ops := make([]int64, n)
	files := make([]int, n)
	for f, c := range rep.FileOps {
		s := node.N.ShardOfFile(f)
		ops[s] += c
		files[s]++
	}
	var b strings.Builder
	b.WriteString("per-shard split: ")
	secs := rep.Elapsed.Seconds()
	for s := 0; s < n; s++ {
		if s > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "s%d %.1f ops/s (%d files)", s, float64(ops[s])/secs, files[s])
	}
	b.WriteString("\n")
	return b.String()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "idea-load: "+format+"\n", args...)
	os.Exit(1)
}
