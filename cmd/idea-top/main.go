// Command idea-top is the cluster introspection console: it scrapes
// every node's /metrics and /health admin endpoints and renders a live
// refreshing terminal view — per-node ops/sec, queue depths, alive set,
// WAL fsync p99, process runtime stats, the health verdict with active
// anomalies, and (when tracing is on) a cluster-wide visibility /
// resolution p99 estimate from the sampled trace journals.
//
// Usage:
//
//	idea-top -nodes http://127.0.0.1:9001,http://127.0.0.1:9002
//	idea-top -nodes ... -interval 2s          # live view, ^C to stop
//	idea-top -nodes ... -json                 # one sweep, JSON to stdout
//
// One-shot -json mode is the machine interface: soak and CI pipe it to
// a file per sweep and fail the run when "unacked_critical" is nonzero
// (exit status 2 mirrors that, so scripts can gate without parsing).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"idea/internal/topview"
)

func main() {
	nodes := flag.String("nodes", "", "comma-separated admin base URLs (required)")
	interval := flag.Duration("interval", 2*time.Second, "refresh period of the live view")
	oneJSON := flag.Bool("json", false, "one sweep, JSON to stdout, exit 2 on unacked critical or unreachable node")
	slo := flag.Bool("slo", true, "estimate cluster visibility/resolution p99 from /trace journals")
	timeout := flag.Duration("timeout", 5*time.Second, "per-endpoint fetch timeout")
	flag.Parse()

	var bases []string
	for _, b := range strings.Split(*nodes, ",") {
		if b = strings.TrimSpace(b); b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		fmt.Fprintln(os.Stderr, "idea-top: -nodes is required (see -h)")
		os.Exit(1)
	}
	client := &http.Client{Timeout: *timeout}

	if *oneJSON {
		cs := topview.Collect(client, bases, *slo)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(cs)
		if !cs.OK() {
			os.Exit(2)
		}
		return
	}

	var prev *topview.ClusterSample
	for {
		cs := topview.Collect(client, bases, *slo)
		// Home the cursor and clear below instead of a full wipe: no
		// flicker at human refresh rates.
		fmt.Print("\x1b[H\x1b[2J")
		topview.RenderText(os.Stdout, cs, prev)
		prev = &cs
		time.Sleep(*interval)
	}
}
