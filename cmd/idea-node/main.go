// Command idea-node runs one live IDEA node over TCP — the same protocol
// code the emulator drives, behind real sockets. A small line-oriented
// console on stdin drives writes, hints, and resolutions, so a handful of
// terminals (or examples/tcpcluster programmatically) form a working
// deployment.
//
// Usage:
//
//	idea-node -id 1 -listen 127.0.0.1:7001 \
//	          -peers 2=127.0.0.1:7002,3=127.0.0.1:7003 -all 1,2,3 \
//	          -top board=1,2,3
//
// Console commands:
//
//	write <file> <text>     append an update (triggers detection)
//	read <file>             print the local replica
//	hint <file> <level>     set a hint level, e.g. 0.95
//	resolve <file>          demand active resolution
//	bg <file> <seconds>     set background resolution frequency
//	level <file>            print the last detected consistency level
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"idea"
)

func main() {
	idFlag := flag.Int64("id", 1, "node ID")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	peers := flag.String("peers", "", "comma-separated id=addr peer list")
	allFlag := flag.String("all", "", "comma-separated node IDs of the full deployment")
	top := flag.String("top", "", "comma-separated file=ids top-layer pins, e.g. board=1,2;log=2,3")
	verbose := flag.Bool("v", false, "verbose transport logging")
	flag.Parse()

	cfg := idea.LiveNodeConfig{
		Self:   idea.NodeID(*idFlag),
		Listen: *listen,
		Peers:  map[idea.NodeID]string{},
	}
	if *verbose {
		cfg.Logger = log.New(os.Stderr, "idea-node ", log.LstdFlags|log.Lmicroseconds)
	}
	for _, p := range splitNonEmpty(*peers, ",") {
		idStr, addr, ok := strings.Cut(p, "=")
		if !ok {
			fatalf("bad -peers entry %q", p)
		}
		nid, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			fatalf("bad peer id %q: %v", idStr, err)
		}
		cfg.Peers[idea.NodeID(nid)] = addr
	}
	for _, s := range splitNonEmpty(*allFlag, ",") {
		nid, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			fatalf("bad -all id %q: %v", s, err)
		}
		cfg.All = append(cfg.All, idea.NodeID(nid))
	}
	if len(cfg.All) == 0 {
		cfg.All = []idea.NodeID{cfg.Self}
		for nid := range cfg.Peers {
			cfg.All = append(cfg.All, nid)
		}
	}
	if *top != "" {
		cfg.TopLayers = map[idea.FileID][]idea.NodeID{}
		for _, ent := range splitNonEmpty(*top, ";") {
			file, idList, ok := strings.Cut(ent, "=")
			if !ok {
				fatalf("bad -top entry %q", ent)
			}
			var ids []idea.NodeID
			for _, s := range splitNonEmpty(idList, ",") {
				nid, err := strconv.ParseInt(s, 10, 64)
				if err != nil {
					fatalf("bad -top id %q: %v", s, err)
				}
				ids = append(ids, idea.NodeID(nid))
			}
			cfg.TopLayers[idea.FileID(file)] = ids
		}
	}

	node, err := idea.NewLiveNode(cfg)
	if err != nil {
		fatalf("start: %v", err)
	}
	defer node.Close()
	fmt.Printf("node %v listening on %s\n", cfg.Self, node.Addr())

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch cmd := fields[0]; cmd {
		case "quit", "exit":
			return
		case "write":
			if len(fields) < 3 {
				fmt.Println("usage: write <file> <text>")
				continue
			}
			file := idea.FileID(fields[1])
			text := strings.Join(fields[2:], " ")
			node.Inject(func(e idea.Env) {
				u := node.N.Write(e, file, "text", []byte(text), float64(len(text)))
				fmt.Printf("wrote %s\n", u.Key())
			})
		case "read":
			if len(fields) != 2 {
				fmt.Println("usage: read <file>")
				continue
			}
			file := idea.FileID(fields[1])
			done := make(chan []idea.Update, 1)
			node.Inject(func(e idea.Env) { done <- node.N.Read(file) })
			for _, u := range <-done {
				fmt.Printf("  %-14s %q\n", u.Key(), string(u.Data))
			}
		case "hint":
			if len(fields) != 3 {
				fmt.Println("usage: hint <file> <level>")
				continue
			}
			level, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				fmt.Println("bad level:", err)
				continue
			}
			file := idea.FileID(fields[1])
			node.Inject(func(e idea.Env) {
				if err := node.N.SetHint(file, level); err != nil {
					fmt.Println(err)
				}
			})
		case "resolve":
			if len(fields) != 2 {
				fmt.Println("usage: resolve <file>")
				continue
			}
			file := idea.FileID(fields[1])
			node.Inject(func(e idea.Env) { node.N.DemandActiveResolution(e, file) })
		case "bg":
			if len(fields) != 3 {
				fmt.Println("usage: bg <file> <seconds>")
				continue
			}
			secs, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				fmt.Println("bad seconds:", err)
				continue
			}
			file := idea.FileID(fields[1])
			node.Inject(func(e idea.Env) {
				node.N.SetBackgroundFreq(e, file, time.Duration(secs*float64(time.Second)))
			})
		case "level":
			if len(fields) != 2 {
				fmt.Println("usage: level <file>")
				continue
			}
			file := idea.FileID(fields[1])
			done := make(chan float64, 1)
			node.Inject(func(e idea.Env) { done <- node.N.Level(file) })
			fmt.Printf("consistency level: %.4f\n", <-done)
		default:
			fmt.Println("commands: write read hint resolve bg level quit")
		}
	}
}

func splitNonEmpty(s, sep string) []string {
	var out []string
	for _, part := range strings.Split(s, sep) {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
