// Command idea-node runs one live IDEA node over TCP — the same protocol
// code the emulator drives, behind real sockets. A small line-oriented
// console on stdin drives writes, hints, and resolutions, so a handful of
// terminals (or examples/tcpcluster programmatically) form a working
// deployment. With -admin the node also serves an HTTP endpoint exposing
// its telemetry registry (/metrics — JSON, or Prometheus text with
// ?format=prom), the health engine's verdict and active anomalies
// (/health; the /healthz liveness probe turns 503 on a critical
// verdict), the always-on flight recorder (/debug/flight), pprof
// profiles (/debug/pprof/), and — with -trace-every — the causal-tracing
// span journal (/trace) that cmd/idea-trace merges into a cluster
// timeline. SIGQUIT dumps the flight recorder to stderr without
// stopping the node.
//
// Usage:
//
//	idea-node -id 1 -listen 127.0.0.1:7001 \
//	          -peers 2=127.0.0.1:7002,3=127.0.0.1:7003 -all 1,2,3 \
//	          -top board=1,2,3 -admin 127.0.0.1:9001
//
// With -swim the node runs dynamic membership (SWIM failure detection:
// dead peers are evicted, joiners admitted at runtime); with
// -join <seed-addr> it needs no -peers/-all at all — it fetches the
// member list from the seed, announces itself, and bootstraps its store
// via snapshot transfer. SIGINT/SIGTERM shut down gracefully: the node
// announces its departure before closing.
//
// Console commands:
//
//	write <file> <text>     append an update (triggers detection)
//	read <file>             print the local replica
//	hint <file> <level>     set a hint level, e.g. 0.95
//	resolve <file>          demand active resolution
//	bg <file> <seconds>     set background resolution frequency
//	level <file>            print the last detected consistency level
//	members                 print the live membership view (-swim/-join)
//	metrics                 print the non-zero telemetry counters
//	quit
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"idea"
	"idea/internal/cliutil"
)

func main() {
	idFlag := flag.Int64("id", 1, "node ID")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	peers := flag.String("peers", "", "comma-separated id=addr peer list")
	allFlag := flag.String("all", "", "comma-separated node IDs of the full deployment")
	top := flag.String("top", "", "comma-separated file=ids top-layer pins, e.g. board=1,2;log=2,3")
	admin := flag.String("admin", "", "serve /metrics, /health, /healthz, /trace, /debug/flight on this address")
	shards := flag.Int("shards", 0, "per-file serialization domains / executor goroutines (0 = one per CPU, 1 = classic single loop)")
	compact := flag.Bool("compact-logs", false, "prune replica logs below the gossip-learned stability frontier (reads then serve only the live suffix)")
	swim := flag.Bool("swim", false, "dynamic membership: SWIM failure detection + live join/leave")
	join := flag.String("join", "", "seed address to join a live cluster (implies -swim; -peers/-all not needed)")
	traceEvery := flag.Int("trace-every", 0, "sample 1 in N writes for causal tracing, journal on /trace (0 = off, 100 = 1%)")
	verbose := flag.Bool("v", false, "verbose transport logging")
	flag.Parse()

	cfg := idea.LiveNodeConfig{
		Self:        idea.NodeID(*idFlag),
		Listen:      *listen,
		Shards:      *shards,
		CompactLogs: *compact,
		Swim:        *swim,
		Join:        *join,
		Tracing:     idea.TracingConfig{SampleEvery: *traceEvery},
	}
	if *verbose {
		cfg.Logger = log.New(os.Stderr, "idea-node ", log.LstdFlags|log.Lmicroseconds)
	}
	var err error
	if cfg.Peers, err = cliutil.ParsePeers(*peers); err != nil {
		fatalf("-peers: %v", err)
	}
	if cfg.All, err = cliutil.ParseIDs(*allFlag); err != nil {
		fatalf("-all: %v", err)
	}
	if len(cfg.All) == 0 {
		cfg.All = cliutil.DefaultAll(cfg.Self, cfg.Peers)
	}
	if cfg.TopLayers, err = cliutil.ParseTops(*top); err != nil {
		fatalf("-top: %v", err)
	}
	if cfg.Join != "" && cfg.TopLayers != nil {
		fatalf("-join and -top are mutually exclusive (a joiner has no static config)")
	}

	node, err := idea.NewLiveNode(cfg)
	if err != nil {
		fatalf("start: %v", err)
	}
	defer node.Close()
	fmt.Printf("node %v listening on %s (%d shard(s))\n", cfg.Self, node.Addr(), node.NumShards())

	if *admin != "" {
		srv, err := idea.ServeNodeAdmin(*admin, node.N)
		if err != nil {
			fatalf("admin: %v", err)
		}
		defer srv.Close()
		fmt.Printf("admin on http://%s/metrics\n", srv.Addr())
	}

	// Graceful shutdown: announce leave (so peers evict us without a
	// suspicion period), then flush and close the node.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "\nidea-node: %v: leaving cluster\n", s)
		node.Leave(2 * time.Second)
		node.Close()
		os.Exit(0)
	}()

	// SIGQUIT dumps the flight recorder — the unsampled ring of recent
	// protocol events — to stderr and keeps running, the classic "what
	// was this process just doing" probe (`kill -QUIT <pid>`).
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			dumpFlight(node.N)
		}
	}()

	con := &console{node: node, out: os.Stdout}
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			// stdin EOF (scripted session): leave as gracefully as quit.
			node.Leave(2 * time.Second)
			return
		}
		if con.exec(sc.Text()) {
			node.Leave(2 * time.Second)
			return
		}
	}
}

func dumpFlight(n *idea.Node) {
	dump := idea.FlightDumpOf(n)
	fmt.Fprintf(os.Stderr, "\nidea-node: SIGQUIT: flight recorder (%d events, %d dropped)\n",
		len(dump.Events), dump.Dropped)
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	enc.Encode(dump)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
