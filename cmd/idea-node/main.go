// Command idea-node runs one live IDEA node over TCP — the same protocol
// code the emulator drives, behind real sockets. A small line-oriented
// console on stdin drives writes, hints, and resolutions, so a handful of
// terminals (or examples/tcpcluster programmatically) form a working
// deployment. With -admin the node also serves an HTTP endpoint exposing
// its telemetry registry (/metrics, JSON) and a liveness probe
// (/healthz) — the surface cmd/idea-load reads while driving the cluster.
//
// Usage:
//
//	idea-node -id 1 -listen 127.0.0.1:7001 \
//	          -peers 2=127.0.0.1:7002,3=127.0.0.1:7003 -all 1,2,3 \
//	          -top board=1,2,3 -admin 127.0.0.1:9001
//
// Console commands:
//
//	write <file> <text>     append an update (triggers detection)
//	read <file>             print the local replica
//	hint <file> <level>     set a hint level, e.g. 0.95
//	resolve <file>          demand active resolution
//	bg <file> <seconds>     set background resolution frequency
//	level <file>            print the last detected consistency level
//	metrics                 print the non-zero telemetry counters
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"idea"
	"idea/internal/cliutil"
)

func main() {
	idFlag := flag.Int64("id", 1, "node ID")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	peers := flag.String("peers", "", "comma-separated id=addr peer list")
	allFlag := flag.String("all", "", "comma-separated node IDs of the full deployment")
	top := flag.String("top", "", "comma-separated file=ids top-layer pins, e.g. board=1,2;log=2,3")
	admin := flag.String("admin", "", "serve /metrics + /healthz on this address")
	shards := flag.Int("shards", 0, "per-file serialization domains / executor goroutines (0 = one per CPU, 1 = classic single loop)")
	compact := flag.Bool("compact-logs", false, "prune replica logs below the gossip-learned stability frontier (reads then serve only the live suffix)")
	verbose := flag.Bool("v", false, "verbose transport logging")
	flag.Parse()

	cfg := idea.LiveNodeConfig{
		Self:        idea.NodeID(*idFlag),
		Listen:      *listen,
		Shards:      *shards,
		CompactLogs: *compact,
	}
	if *verbose {
		cfg.Logger = log.New(os.Stderr, "idea-node ", log.LstdFlags|log.Lmicroseconds)
	}
	var err error
	if cfg.Peers, err = cliutil.ParsePeers(*peers); err != nil {
		fatalf("-peers: %v", err)
	}
	if cfg.All, err = cliutil.ParseIDs(*allFlag); err != nil {
		fatalf("-all: %v", err)
	}
	if len(cfg.All) == 0 {
		cfg.All = cliutil.DefaultAll(cfg.Self, cfg.Peers)
	}
	if cfg.TopLayers, err = cliutil.ParseTops(*top); err != nil {
		fatalf("-top: %v", err)
	}

	node, err := idea.NewLiveNode(cfg)
	if err != nil {
		fatalf("start: %v", err)
	}
	defer node.Close()
	fmt.Printf("node %v listening on %s (%d shard(s))\n", cfg.Self, node.Addr(), node.NumShards())

	if *admin != "" {
		srv, err := idea.ServeMetrics(*admin, node.Metrics())
		if err != nil {
			fatalf("admin: %v", err)
		}
		defer srv.Close()
		fmt.Printf("admin on http://%s/metrics\n", srv.Addr())
	}

	con := &console{node: node, out: os.Stdout}
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		if con.exec(sc.Text()) {
			return
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
