package main

import (
	"strings"
	"sync"
	"testing"
	"time"

	"idea"
)

// syncBuffer is an io.Writer the event loop and the test can share.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func (s *syncBuffer) waitFor(t *testing.T, sub string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(s.String(), sub) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("output never contained %q; got:\n%s", sub, s.String())
}

func testConsole(t *testing.T) (*console, *syncBuffer) {
	t.Helper()
	node, err := idea.NewLiveNode(idea.LiveNodeConfig{
		Self:   1,
		Listen: "127.0.0.1:0",
		All:    []idea.NodeID{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	out := &syncBuffer{}
	return &console{node: node, out: out}, out
}

func TestConsoleWriteAndRead(t *testing.T) {
	con, out := testConsole(t)
	if con.exec("write board hello world") {
		t.Fatal("write must not quit")
	}
	out.waitFor(t, "wrote board/n1#1")
	con.exec("read board")
	out.waitFor(t, `"hello world"`)
}

func TestConsoleHint(t *testing.T) {
	con, out := testConsole(t)
	con.exec("hint board 0.95")
	// An invalid level reports the facade's range error.
	con.exec("hint board 1.5")
	out.waitFor(t, "outside [0, 1]")
	// A non-numeric level reports a parse error without injecting.
	con.exec("hint board abc")
	out.waitFor(t, "bad level:")
}

func TestConsoleLevel(t *testing.T) {
	con, out := testConsole(t)
	con.exec("level board")
	out.waitFor(t, "consistency level: 1.0000")
}

func TestConsoleResolveAndBg(t *testing.T) {
	con, out := testConsole(t)
	if con.exec("resolve board") {
		t.Fatal("resolve must not quit")
	}
	con.exec("bg board 2.5")
	con.exec("bg board x")
	out.waitFor(t, "bad seconds:")
	// A lone node resolves against an empty top layer immediately; the
	// write path must still work afterwards.
	con.exec("write board after-resolve")
	out.waitFor(t, "wrote board/n1#")
}

func TestConsoleMalformedAndUsage(t *testing.T) {
	con, out := testConsole(t)
	con.exec("write board")
	out.waitFor(t, "usage: write <file> <text>")
	con.exec("read")
	out.waitFor(t, "usage: read <file>")
	con.exec("hint board")
	out.waitFor(t, "usage: hint <file> <level>")
	con.exec("level")
	out.waitFor(t, "usage: level <file>")
	con.exec("frobnicate")
	out.waitFor(t, "commands: write read hint resolve bg level members metrics quit")
	if con.exec("") {
		t.Fatal("empty line must not quit")
	}
}

func TestConsoleQuit(t *testing.T) {
	con, _ := testConsole(t)
	if !con.exec("quit") {
		t.Fatal("quit must end the session")
	}
	if !con.exec("exit") {
		t.Fatal("exit must end the session")
	}
}

func TestConsoleMetrics(t *testing.T) {
	con, out := testConsole(t)
	con.exec("write board x")
	out.waitFor(t, "wrote")
	con.exec("metrics")
	out.waitFor(t, "core.writes_total")
}
