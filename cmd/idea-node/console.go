package main

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"idea"
)

// console executes the line-oriented operator commands against a live
// node. It is extracted from the stdin loop so every command is unit-
// testable; output ordering for asynchronous commands (write) follows
// the event loop, so tests poll the writer.
type console struct {
	node *idea.LiveNode
	out  io.Writer
}

// usage maps each command to its usage line.
var usage = map[string]string{
	"write":   "usage: write <file> <text>",
	"read":    "usage: read <file>",
	"hint":    "usage: hint <file> <level>",
	"resolve": "usage: resolve <file>",
	"bg":      "usage: bg <file> <seconds>",
	"level":   "usage: level <file>",
	"members": "usage: members",
	"metrics": "usage: metrics",
}

// exec runs one console line and returns true when the session should
// end. Unknown or malformed commands print help/usage and keep going.
func (c *console) exec(line string) (quit bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false
	}
	switch cmd := fields[0]; cmd {
	case "quit", "exit":
		return true
	case "write":
		if len(fields) < 3 {
			fmt.Fprintln(c.out, usage[cmd])
			return false
		}
		file := idea.FileID(fields[1])
		text := strings.Join(fields[2:], " ")
		c.node.InjectFile(file, func(e idea.Env) {
			u := c.node.N.Write(e, file, "text", []byte(text), float64(len(text)))
			fmt.Fprintf(c.out, "wrote %s\n", u.Key())
		})
	case "read":
		if len(fields) != 2 {
			fmt.Fprintln(c.out, usage[cmd])
			return false
		}
		file := idea.FileID(fields[1])
		done := make(chan []idea.Update, 1)
		c.node.InjectFile(file, func(e idea.Env) { done <- c.node.N.Read(file) })
		for _, u := range <-done {
			fmt.Fprintf(c.out, "  %-14s %q\n", u.Key(), string(u.Data))
		}
	case "hint":
		if len(fields) != 3 {
			fmt.Fprintln(c.out, usage[cmd])
			return false
		}
		level, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			fmt.Fprintln(c.out, "bad level:", err)
			return false
		}
		file := idea.FileID(fields[1])
		done := make(chan error, 1)
		c.node.InjectFile(file, func(e idea.Env) { done <- c.node.N.SetHint(file, level) })
		if err := <-done; err != nil {
			fmt.Fprintln(c.out, err)
		}
	case "resolve":
		if len(fields) != 2 {
			fmt.Fprintln(c.out, usage[cmd])
			return false
		}
		file := idea.FileID(fields[1])
		c.node.InjectFile(file, func(e idea.Env) { c.node.N.DemandActiveResolution(e, file) })
	case "bg":
		if len(fields) != 3 {
			fmt.Fprintln(c.out, usage[cmd])
			return false
		}
		secs, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			fmt.Fprintln(c.out, "bad seconds:", err)
			return false
		}
		file := idea.FileID(fields[1])
		c.node.InjectFile(file, func(e idea.Env) {
			c.node.N.SetBackgroundFreq(e, file, time.Duration(secs*float64(time.Second)))
		})
	case "level":
		if len(fields) != 2 {
			fmt.Fprintln(c.out, usage[cmd])
			return false
		}
		file := idea.FileID(fields[1])
		done := make(chan float64, 1)
		c.node.InjectFile(file, func(e idea.Env) { done <- c.node.N.Level(file) })
		fmt.Fprintf(c.out, "consistency level: %.4f\n", <-done)
	case "members":
		recs := c.node.Members()
		if recs == nil {
			fmt.Fprintln(c.out, "dynamic membership disabled (start with -swim or -join)")
			return false
		}
		for _, r := range recs {
			addr := r.Addr
			if addr == "" {
				addr = "-"
			}
			fmt.Fprintf(c.out, "  %-8v %-8s inc=%-4d %s\n", r.Node, r.Status, r.Incarnation, addr)
		}
	case "metrics":
		snap := c.node.Metrics().Snapshot()
		counters := make([]string, 0, len(snap.Counters))
		for name, v := range snap.Counters {
			if v != 0 {
				counters = append(counters, name)
			}
		}
		sort.Strings(counters)
		for _, name := range counters {
			fmt.Fprintf(c.out, "  %-40s %d\n", name, snap.Counters[name])
		}
		// Gauges surface the sharded runtime's live queue state
		// (core.shard_queue_depth.<i>) alongside store/gossip levels.
		gauges := make([]string, 0, len(snap.Gauges))
		for name, v := range snap.Gauges {
			if v != 0 {
				gauges = append(gauges, name)
			}
		}
		sort.Strings(gauges)
		for _, name := range gauges {
			fmt.Fprintf(c.out, "  %-40s %d\n", name, snap.Gauges[name])
		}
		hists := make([]string, 0, len(snap.Histograms))
		for name, h := range snap.Histograms {
			if h.Count != 0 {
				hists = append(hists, name)
			}
		}
		sort.Strings(hists)
		for _, name := range hists {
			h := snap.Histograms[name]
			fmt.Fprintf(c.out, "  %-40s n=%d p50=%.4gs p99=%.4gs\n", name, h.Count, h.P50, h.P99)
		}
	default:
		fmt.Fprintln(c.out, "commands: write read hint resolve bg level members metrics quit")
	}
	return false
}
