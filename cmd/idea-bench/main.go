// Command idea-bench regenerates every table and figure of the paper's
// evaluation on the deterministic WAN emulator and prints them in the
// layout the paper uses. Run with -seed to vary the replayed universe.
//
//	go run ./cmd/idea-bench            # everything
//	go run ./cmd/idea-bench -only fig7a,table2
//
// With -gate it instead acts as the CI bench-regression gate: the fresh
// BENCH_core.json artifact is diffed against the committed
// BENCH_baseline.json and any tracked metric more than its tolerance
// worse than baseline — or a parallel-write speedup below -min-speedup
// on a machine with enough cores to measure one — exits nonzero.
//
//	go test -run '^$' -bench CoreBaseline -benchtime 100x .
//	go run ./cmd/idea-bench -gate
//
// With -diff it renders the same comparison as a benchstat-style
// markdown table over every numeric key in both artifacts — for CI to
// upload as a readable perf delta on every PR. -diff never fails the
// build; only -gate judges.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"idea/internal/experiments"
)

// runExperiments replays the selected experiments (empty = all) and
// renders them to w, returning how many ran.
func runExperiments(seed int64, only string, w io.Writer) int {
	type exp struct {
		key string
		run func() experiments.Report
	}
	all := []exp{
		{"fig7a", func() experiments.Report { return experiments.RunFig7a(seed) }},
		{"fig7b", func() experiments.Report { return experiments.RunFig7b(seed) }},
		{"fig8", func() experiments.Report { return experiments.RunFig8(seed) }},
		{"table2", func() experiments.Report { return experiments.RunTable2(seed) }},
		{"fig9", func() experiments.Report { return experiments.RunFig9(seed) }},
		{"fig10", func() experiments.Report { return experiments.RunFig10Table3(seed) }},
		{"fig2", func() experiments.Report { return experiments.RunFig2Tradeoff(seed) }},
		{"capture", func() experiments.Report { return experiments.RunTopLayerCapture(seed, 0.05) }},
		{"rollback", func() experiments.Report { return experiments.RunRollback(seed) }},
		{"bounds", func() experiments.Report { return experiments.RunBoundsLearning(seed) }},
		{"parallel", func() experiments.Report { return experiments.RunParallelPhase2(seed) }},
		{"ttl", func() experiments.Report { return experiments.RunTTLTradeoff(seed) }},
		{"refsel", func() experiments.Report { return experiments.RunRefSelectors(seed) }},
		{"skew", func() experiments.Report { return experiments.RunSkewSensitivity(seed) }},
		{"workload", func() experiments.Report { return experiments.RunWorkloadSensitivity(seed) }},
	}

	want := map[string]bool{}
	if only != "" {
		for _, k := range strings.Split(only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}

	fmt.Fprintln(w, "IDEA evaluation reproduction (emulated PlanetLab, virtual time)")
	fmt.Fprintf(w, "seed %d\n", seed)
	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.key] {
			continue
		}
		r := e.run()
		fmt.Fprint(w, r.Rendered)
		ran++
	}
	return ran
}

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed for every experiment")
	only := flag.String("only", "", "comma-separated subset (fig7a,fig7b,fig8,table2,fig9,fig10,fig2,capture,rollback,bounds,parallel,ttl,refsel,skew,workload)")
	gate := flag.Bool("gate", false, "bench-regression gate: diff -bench against -baseline and exit nonzero on regression")
	diff := flag.Bool("diff", false, "render -bench vs -baseline as a markdown table on stdout (never fails)")
	benchFile := flag.String("bench", "BENCH_core.json", "fresh bench artifact (gate mode)")
	baseFile := flag.String("baseline", "BENCH_baseline.json", "committed baseline (gate mode)")
	minSpeedup := flag.Float64("min-speedup", 2.0, "required parallel_write_speedup_x when the bench ran with >= 4 cores (gate mode)")
	flag.Parse()

	if *gate {
		if err := runGate(*benchFile, *baseFile, *minSpeedup, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *diff {
		if err := runDiff(*benchFile, *baseFile, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if runExperiments(*seed, *only, os.Stdout) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -only")
		os.Exit(2)
	}
}
