// Command idea-bench regenerates every table and figure of the paper's
// evaluation on the deterministic WAN emulator and prints them in the
// layout the paper uses. Run with -seed to vary the replayed universe.
//
//	go run ./cmd/idea-bench            # everything
//	go run ./cmd/idea-bench -only fig7a,table2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"idea/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed for every experiment")
	only := flag.String("only", "", "comma-separated subset (fig7a,fig7b,fig8,table2,fig9,fig10,fig2,capture,rollback,bounds,parallel,ttl,refsel,skew)")
	flag.Parse()

	type exp struct {
		key string
		run func() experiments.Report
	}
	all := []exp{
		{"fig7a", func() experiments.Report { return experiments.RunFig7a(*seed) }},
		{"fig7b", func() experiments.Report { return experiments.RunFig7b(*seed) }},
		{"fig8", func() experiments.Report { return experiments.RunFig8(*seed) }},
		{"table2", func() experiments.Report { return experiments.RunTable2(*seed) }},
		{"fig9", func() experiments.Report { return experiments.RunFig9(*seed) }},
		{"fig10", func() experiments.Report { return experiments.RunFig10Table3(*seed) }},
		{"fig2", func() experiments.Report { return experiments.RunFig2Tradeoff(*seed) }},
		{"capture", func() experiments.Report { return experiments.RunTopLayerCapture(*seed, 0.05) }},
		{"rollback", func() experiments.Report { return experiments.RunRollback(*seed) }},
		{"bounds", func() experiments.Report { return experiments.RunBoundsLearning(*seed) }},
		{"parallel", func() experiments.Report { return experiments.RunParallelPhase2(*seed) }},
		{"ttl", func() experiments.Report { return experiments.RunTTLTradeoff(*seed) }},
		{"refsel", func() experiments.Report { return experiments.RunRefSelectors(*seed) }},
		{"skew", func() experiments.Report { return experiments.RunSkewSensitivity(*seed) }},
		{"workload", func() experiments.Report { return experiments.RunWorkloadSensitivity(*seed) }},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}

	fmt.Println("IDEA evaluation reproduction (emulated PlanetLab, virtual time)")
	fmt.Printf("seed %d\n", *seed)
	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.key] {
			continue
		}
		r := e.run()
		fmt.Print(r.Rendered)
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -only")
		os.Exit(2)
	}
}
