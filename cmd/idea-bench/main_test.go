package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExperimentsSmoke runs one real experiment end-to-end on the
// emulated cluster through the same code path the binary uses — the
// command was previously never exercised by any test.
func TestExperimentsSmoke(t *testing.T) {
	var buf strings.Builder
	if ran := runExperiments(1, "table2", &buf); ran != 1 {
		t.Fatalf("ran %d experiments, want 1", ran)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 2") {
		t.Fatalf("table2 output missing its header:\n%s", out)
	}
}

func TestExperimentsUnknownKey(t *testing.T) {
	var buf strings.Builder
	if ran := runExperiments(1, "no-such-exp", &buf); ran != 0 {
		t.Fatalf("ran %d experiments for an unknown key, want 0", ran)
	}
}

// writeBench writes a bench/baseline JSON fixture.
func writeBench(t *testing.T, dir, name string, m map[string]any) string {
	t.Helper()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func goodBench() map[string]any {
	return map[string]any{
		"missing_from_speedup_x":              400.0,
		"missing_from_ns_indexed":             800.0,
		"digest_encode_bytes":                 735.0,
		"parallel_write_ops_per_sec_shards_1": 400000.0,
		"parallel_write_ops_per_sec_shards_4": 410000.0,
		"parallel_write_speedup_x":            1.02,
		"join_catchup_seconds":                0.05,
		"write_visibility_ms_p99":             450.0,
		"resolve_latency_ms_p99":              300.0,
		"tracing_sampled_throughput_ratio":    0.99,
		"health_overhead_throughput_ratio":    0.98,
		"encode_allocs_per_op":                0.0,
		"snapshot_mb_per_sec":                 400.0,
		"gomaxprocs":                          1.0,
		"num_cpu":                             1.0,
	}
}

func TestGatePasses(t *testing.T) {
	dir := t.TempDir()
	bench := writeBench(t, dir, "bench.json", goodBench())
	base := writeBench(t, dir, "base.json", goodBench())
	var out strings.Builder
	if err := runGate(bench, base, 2.0, &out); err != nil {
		t.Fatalf("gate failed on identical bench/baseline: %v\n%s", err, out.String())
	}
	// gomaxprocs 1: the speedup floor must be skipped, not violated.
	if !strings.Contains(out.String(), "speedup floor: skipped") {
		t.Fatalf("expected skipped speedup floor at gomaxprocs=1:\n%s", out.String())
	}
}

func TestGateCatchesRegression(t *testing.T) {
	dir := t.TempDir()
	b := goodBench()
	b["parallel_write_ops_per_sec_shards_4"] = 150000.0 // −63% vs baseline (tol 50%)
	bench := writeBench(t, dir, "bench.json", b)
	base := writeBench(t, dir, "base.json", goodBench())
	var out strings.Builder
	err := runGate(bench, base, 2.0, &out)
	if err == nil {
		t.Fatalf("gate passed a 63%% throughput regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("verdict table missing REGRESSION marker:\n%s", out.String())
	}
}

func TestGateCatchesLowerIsBetterRegression(t *testing.T) {
	dir := t.TempDir()
	b := goodBench()
	b["digest_encode_bytes"] = 2000.0 // digests ballooned
	bench := writeBench(t, dir, "bench.json", b)
	base := writeBench(t, dir, "base.json", goodBench())
	if err := runGate(bench, base, 2.0, &strings.Builder{}); err == nil {
		t.Fatal("gate passed a 2.7x digest-size regression")
	}
}

func TestGateToleratesNoise(t *testing.T) {
	dir := t.TempDir()
	b := goodBench()
	b["parallel_write_ops_per_sec_shards_4"] = 300000.0 // −27%: within its 50% tol
	b["join_catchup_seconds"] = 0.09                    // +80%: within its 100% tol
	bench := writeBench(t, dir, "bench.json", b)
	base := writeBench(t, dir, "base.json", goodBench())
	var out strings.Builder
	if err := runGate(bench, base, 2.0, &out); err != nil {
		t.Fatalf("gate flaked on in-tolerance noise: %v\n%s", err, out.String())
	}
}

func TestGateEnforcesSpeedupFloorOnMulticore(t *testing.T) {
	dir := t.TempDir()
	b := goodBench()
	b["gomaxprocs"] = 8.0
	b["num_cpu"] = 8.0
	b["parallel_write_speedup_x"] = 1.02 // sharding doesn't pay on 8 cores
	bench := writeBench(t, dir, "bench.json", b)
	base := writeBench(t, dir, "base.json", goodBench())
	if err := runGate(bench, base, 2.0, &strings.Builder{}); err == nil {
		t.Fatal("gate passed speedup 1.02x at gomaxprocs=8 with a 2.0x floor")
	}

	b["parallel_write_speedup_x"] = 2.6
	bench = writeBench(t, dir, "bench2.json", b)
	var out strings.Builder
	if err := runGate(bench, base, 2.0, &out); err != nil {
		// The baseline still has speedup 1.02 (higher-better, 20% tol):
		// 2.6 vs 1.02 is an improvement, so only the floor matters.
		t.Fatalf("gate failed a passing 2.6x speedup: %v\n%s", err, out.String())
	}
}

func TestGateCatchesVisibilitySLOViolation(t *testing.T) {
	dir := t.TempDir()
	b := goodBench()
	b["write_visibility_ms_p99"] = 600.0 // +33% vs its 20% tolerance
	bench := writeBench(t, dir, "bench.json", b)
	base := writeBench(t, dir, "base.json", goodBench())
	if err := runGate(bench, base, 2.0, &strings.Builder{}); err == nil {
		t.Fatal("gate passed a 33% write-visibility p99 regression")
	}
}

func TestGateCatchesTracingOverheadRegression(t *testing.T) {
	dir := t.TempDir()
	b := goodBench()
	b["tracing_sampled_throughput_ratio"] = 0.60 // tracing now costs 40%
	bench := writeBench(t, dir, "bench.json", b)
	base := writeBench(t, dir, "base.json", goodBench())
	if err := runGate(bench, base, 2.0, &strings.Builder{}); err == nil {
		t.Fatal("gate passed a 40% tracing overhead")
	}
}

func TestGateCatchesHealthOverheadRegression(t *testing.T) {
	dir := t.TempDir()
	b := goodBench()
	b["health_overhead_throughput_ratio"] = 0.65 // health engine now costs 35%
	bench := writeBench(t, dir, "bench.json", b)
	base := writeBench(t, dir, "base.json", goodBench())
	if err := runGate(bench, base, 2.0, &strings.Builder{}); err == nil {
		t.Fatal("gate passed a 35% health-engine overhead")
	}
}

func TestGateHealthFloorArmsOnMulticore(t *testing.T) {
	dir := t.TempDir()
	b := goodBench()
	b["gomaxprocs"] = 8.0
	b["num_cpu"] = 8.0
	b["parallel_write_speedup_x"] = 2.6
	b["health_overhead_throughput_ratio"] = 0.90 // above the 25% rel tol, below the 0.95 floor
	bench := writeBench(t, dir, "bench.json", b)
	base := writeBench(t, dir, "base.json", goodBench())
	if err := runGate(bench, base, 2.0, &strings.Builder{}); err == nil {
		t.Fatal("gate passed health ratio 0.90 on 8 cores with a 0.95 floor")
	}

	// On a single effective core the floor is skipped: the on/off runs
	// contend for the same CPU and the ratio is scheduler noise.
	b["gomaxprocs"] = 1.0
	b["num_cpu"] = 1.0
	bench = writeBench(t, dir, "bench2.json", b)
	var out strings.Builder
	if err := runGate(bench, base, 2.0, &out); err != nil {
		t.Fatalf("gate enforced the health floor on 1 core: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "health floor: skipped") {
		t.Fatalf("expected skipped health floor at 1 core:\n%s", out.String())
	}
}

func TestGateMissingMetricFails(t *testing.T) {
	dir := t.TempDir()
	b := goodBench()
	delete(b, "parallel_write_speedup_x")
	bench := writeBench(t, dir, "bench.json", b)
	base := writeBench(t, dir, "base.json", goodBench())
	if err := runGate(bench, base, 2.0, &strings.Builder{}); err == nil {
		t.Fatal("gate passed a bench artifact missing a tracked metric")
	}
}

func TestGateZeroToleranceEncodeAllocs(t *testing.T) {
	dir := t.TempDir()
	b := goodBench()
	b["encode_allocs_per_op"] = 1.0 // any allocation on the hot frame fails
	bench := writeBench(t, dir, "bench.json", b)
	base := writeBench(t, dir, "base.json", goodBench())
	if err := runGate(bench, base, 2.0, &strings.Builder{}); err == nil {
		t.Fatal("gate passed 1 alloc/op on the pooled encode path (tolerance is 0)")
	}
}

func TestGateFloorUsesEffectiveCores(t *testing.T) {
	// GOMAXPROCS=8 on a 1-CPU box: no parallelism actually exists, so the
	// floor must skip honestly instead of failing the ≈1.0x reading.
	dir := t.TempDir()
	b := goodBench()
	b["gomaxprocs"] = 8.0
	b["num_cpu"] = 1.0
	b["parallel_write_speedup_x"] = 1.02
	bench := writeBench(t, dir, "bench.json", b)
	base := writeBench(t, dir, "base.json", goodBench())
	var out strings.Builder
	if err := runGate(bench, base, 2.0, &out); err != nil {
		t.Fatalf("gate enforced the speedup floor on 1 effective core: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "speedup floor: skipped") {
		t.Fatalf("expected skipped speedup floor at 1 effective core:\n%s", out.String())
	}
}

func TestGateFloorPrefersHeadlineShardKey(t *testing.T) {
	// When both keys are present the floor reads the explicit 4-shard
	// ratio, not the legacy alias — a PR can't satisfy the floor with a
	// stale duplicate key.
	dir := t.TempDir()
	b := goodBench()
	b["gomaxprocs"] = 8.0
	b["num_cpu"] = 8.0
	b["parallel_write_speedup_x"] = 2.6
	b["parallel_write_speedup_x_shards_4"] = 1.1
	bench := writeBench(t, dir, "bench.json", b)
	base := writeBench(t, dir, "base.json", goodBench())
	if err := runGate(bench, base, 2.0, &strings.Builder{}); err == nil {
		t.Fatal("gate read the legacy speedup key over parallel_write_speedup_x_shards_4")
	}
}

func TestDiffRendersMarkdown(t *testing.T) {
	dir := t.TempDir()
	b := goodBench()
	b["snapshot_mb_per_sec"] = 800.0 // doubled vs baseline
	bench := writeBench(t, dir, "bench.json", b)
	base := writeBench(t, dir, "base.json", goodBench())
	var out strings.Builder
	if err := runDiff(bench, base, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"| metric | baseline | current | delta | gate |",
		"| snapshot_mb_per_sec | 400 | 800 | +100.0% | ✓ |",
		"| gomaxprocs | 1 | 1 | ~ |  |",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("diff output missing %q:\n%s", want, got)
		}
	}
}
