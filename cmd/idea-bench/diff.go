package main

// The -diff mode renders an old-vs-new comparison of every numeric key
// in the bench artifact as a markdown table (benchstat-style), so a PR's
// perf delta is readable in the CI artifact without running anything
// locally. Unlike -gate it never fails: it reports, the gate judges.

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// runDiff writes a markdown table comparing every numeric metric present
// in either file. Metrics tracked by the gate are marked; delta is
// relative to baseline where both sides exist.
func runDiff(benchPath, baselinePath string, w io.Writer) error {
	bench, err := loadBench(benchPath)
	if err != nil {
		return fmt.Errorf("bench-diff: %w", err)
	}
	base, err := loadBench(baselinePath)
	if err != nil {
		return fmt.Errorf("bench-diff: %w", err)
	}
	tracked := make(map[string]bool, len(trackedMetrics))
	for _, m := range trackedMetrics {
		tracked[m.key] = true
	}
	keys := make(map[string]bool, len(bench)+len(base))
	for k := range bench {
		keys[k] = true
	}
	for k := range base {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	fmt.Fprintf(w, "### Bench diff: `%s` vs baseline `%s`\n\n", benchPath, baselinePath)
	fmt.Fprintln(w, "| metric | baseline | current | delta | gate |")
	fmt.Fprintln(w, "|---|---:|---:|---:|:---:|")
	for _, k := range sorted {
		cur, okCur := bench[k]
		old, okOld := base[k]
		curS, oldS, deltaS := "–", "–", "–"
		if okCur {
			curS = fmtNum(cur)
		}
		if okOld {
			oldS = fmtNum(old)
		}
		if okCur && okOld && old != 0 {
			d := (cur - old) / old * 100
			if math.Abs(d) < 0.05 {
				deltaS = "~"
			} else {
				deltaS = fmt.Sprintf("%+.1f%%", d)
			}
		}
		mark := ""
		if tracked[k] {
			mark = "✓"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n", k, oldS, curS, deltaS, mark)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "`✓` = tracked by `idea-bench -gate` (regression beyond tolerance fails CI).")
	return nil
}
