package main

// The -gate mode turns BENCH_core.json from a trivia file into a CI
// gate: every tracked perf headline is diffed against the committed
// BENCH_baseline.json and a regression beyond its tolerance fails the
// run. A PR that legitimately moves a number refreshes the baseline file
// in the same change (see README "Performance & CI gates").

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// gateMetric is one tracked perf headline.
type gateMetric struct {
	key          string
	higherBetter bool
	// tol is the relative regression tolerated before the gate fails:
	// 0.20 = one fifth worse than baseline. Machine-independent metrics
	// (ratios, wire bytes) get the tight 20%; absolute wall-clock and
	// throughput numbers get wider tolerances because the committed
	// baseline may have been recorded on different hardware than the CI
	// runner — they still catch order-of-magnitude rot without flaking
	// on a slower core or scheduler jitter.
	tol float64
}

// trackedMetrics is the gate's contract: every perf number a past PR
// claimed as a win stays a win, within tolerance.
var trackedMetrics = []gateMetric{
	{"missing_from_speedup_x", true, 0.20},
	{"missing_from_ns_indexed", false, 0.50},
	{"digest_encode_bytes", false, 0.20},
	{"parallel_write_ops_per_sec_shards_1", true, 0.50},
	{"parallel_write_ops_per_sec_shards_4", true, 0.50},
	{"parallel_write_speedup_x", true, 0.20},
	{"join_catchup_seconds", false, 1.00},
	// The pooled encode path must stay allocation-free: any alloc on the
	// Update/DigestBatch hot frame is a regression, no tolerance.
	{"encode_allocs_per_op", false, 0.00},
	// Chunked snapshot-bootstrap throughput (payload MB moved per second
	// of join). Wall-clock over loopback: wide tolerance.
	{"snapshot_mb_per_sec", true, 0.50},
	// Visibility SLOs come from merged causal timelines under virtual
	// time — deterministic for the bench seed, so the tolerance only
	// absorbs legitimate protocol-timing shifts, not hardware.
	{"write_visibility_ms_p99", false, 0.20},
	{"resolve_latency_ms_p99", false, 0.20},
	// Tracing must stay near-free: throughput at 1% sampling over
	// throughput with tracing off, same machine, same run.
	{"tracing_sampled_throughput_ratio", true, 0.25},
	// The always-on health engine + flight recorder: throughput with the
	// engine on (the default) over the same burst with it disabled, same
	// machine, same run.
	{"health_overhead_throughput_ratio", true, 0.25},
}

// minHealthRatio is the absolute floor on health_overhead_throughput_ratio:
// enabling the engine must keep at least 95% of health-off throughput.
// Like the speedup floor it is only armed with minSpeedupProcs effective
// cores — on a starved runner the on/off runs contend for the same CPU
// and the ratio measures scheduler noise, not the engine.
const minHealthRatio = 0.95

// minSpeedupProcs is the core count below which the parallel speedup
// floor is not enforced: with fewer schedulable CPUs than the headline
// shard count there is no parallelism to measure, only overhead, and the
// honest reading of speedup ≈ 1.0 there is "sharding costs nothing",
// not "sharding pays".
const minSpeedupProcs = 4

func loadBench(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(raw))
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out, nil
}

// runGate compares the fresh bench artifact against the committed
// baseline and returns an error describing every violated metric. The
// parallel-write speedup floor is additionally enforced (bench must
// demonstrate sharding pays ≥ minSpeedup at the headline shard count)
// whenever the bench ran with at least minSpeedupProcs cores.
func runGate(benchPath, baselinePath string, minSpeedup float64, w io.Writer) error {
	bench, err := loadBench(benchPath)
	if err != nil {
		return fmt.Errorf("bench-gate: %w", err)
	}
	base, err := loadBench(baselinePath)
	if err != nil {
		return fmt.Errorf("bench-gate: %w", err)
	}
	fmt.Fprintf(w, "bench-gate: %s vs baseline %s\n", benchPath, baselinePath)
	fmt.Fprintf(w, "%-40s %14s %14s %9s  %s\n", "metric", "baseline", "current", "delta", "verdict")
	var failures []string
	for _, m := range trackedMetrics {
		cur, okCur := bench[m.key]
		want, okBase := base[m.key]
		switch {
		case !okCur:
			failures = append(failures, fmt.Sprintf("%s: missing from %s", m.key, benchPath))
			fmt.Fprintf(w, "%-40s %14s %14s %9s  MISSING\n", m.key, fmtNum(want), "-", "-")
			continue
		case !okBase:
			// A metric added before the baseline is refreshed: surface
			// it, but only the committed contract can fail the gate.
			fmt.Fprintf(w, "%-40s %14s %14s %9s  UNTRACKED (refresh baseline)\n", m.key, "-", fmtNum(cur), "-")
			continue
		}
		delta := 0.0
		if want != 0 {
			delta = (cur - want) / want
		}
		bad := false
		if m.higherBetter {
			bad = cur < want*(1-m.tol)
		} else {
			bad = cur > want*(1+m.tol)
		}
		verdict := "ok"
		if bad {
			verdict = fmt.Sprintf("REGRESSION (>%.0f%% worse)", m.tol*100)
			dir := "min"
			if !m.higherBetter {
				dir = "max"
			}
			failures = append(failures, fmt.Sprintf("%s: %s vs baseline %s (%+.1f%%, %s tolerated %.0f%%)",
				m.key, fmtNum(cur), fmtNum(want), delta*100, dir, m.tol*100))
		}
		fmt.Fprintf(w, "%-40s %14s %14s %+8.1f%%  %s\n", m.key, fmtNum(want), fmtNum(cur), delta*100, verdict)
	}

	speedup, okSpeedup := bench["parallel_write_speedup_x_shards_4"]
	if !okSpeedup {
		speedup = bench["parallel_write_speedup_x"] // older artifacts
	}
	// The floor is armed by *effective* cores: GOMAXPROCS can claim any
	// number, but parallelism is bounded by the CPUs actually present, so
	// a 1-core runner with GOMAXPROCS=4 must not pretend to measure — or
	// silently skip measuring — a 4-way speedup.
	procs := int(bench["gomaxprocs"])
	cpus := int(bench["num_cpu"])
	if cpus == 0 {
		cpus = procs // older artifacts did not record num_cpu
	}
	eff := procs
	if cpus < eff {
		eff = cpus
	}
	if eff >= minSpeedupProcs {
		if speedup < minSpeedup {
			failures = append(failures, fmt.Sprintf(
				"parallel_write_speedup_x_shards_4 = %.2f < required %.2f at %d effective cores (gomaxprocs=%d, num_cpu=%d)",
				speedup, minSpeedup, eff, procs, cpus))
		} else {
			fmt.Fprintf(w, "speedup floor: %.2fx >= %.2fx at %d effective cores ok\n", speedup, minSpeedup, eff)
		}
	} else {
		fmt.Fprintf(w, "speedup floor: skipped (%d effective cores < %d: no parallelism to measure; speedup recorded %.2fx)\n",
			eff, minSpeedupProcs, speedup)
	}

	if ratio, ok := bench["health_overhead_throughput_ratio"]; ok {
		if eff >= minSpeedupProcs {
			if ratio < minHealthRatio {
				failures = append(failures, fmt.Sprintf(
					"health_overhead_throughput_ratio = %.3f < required %.2f at %d effective cores (gomaxprocs=%d, num_cpu=%d)",
					ratio, minHealthRatio, eff, procs, cpus))
			} else {
				fmt.Fprintf(w, "health floor: %.3f >= %.2f ok\n", ratio, minHealthRatio)
			}
		} else {
			fmt.Fprintf(w, "health floor: skipped (%d effective cores < %d; ratio recorded %.3f)\n",
				eff, minSpeedupProcs, ratio)
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(w, "FAIL %s\n", f)
		}
		return fmt.Errorf("bench-gate: %d tracked metric(s) regressed", len(failures))
	}
	fmt.Fprintln(w, "bench-gate: all tracked metrics within tolerance")
	return nil
}

func fmtNum(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v >= 1000 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}
