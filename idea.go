// Package idea is the public facade of this repository's reproduction of
// "IDEA: An Infrastructure for Detection-based Adaptive Consistency
// Control in Replicated Services" (Yijun Lu, Ying Lu, Hong Jiang;
// UNL TR-UNL-CSE-2007-0001 / HPDC 2007).
//
// IDEA is middleware between applications and a replication-based storage
// substrate. Instead of enforcing a predefined consistency level, it
// *detects* inconsistencies as they arise — using a two-layer
// infrastructure whose small "temperature overlay" of active writers
// catches the vast majority of conflicts within a round trip — and
// *resolves* them only when the application's current requirement calls
// for it: on explicit user demand, when a hint level is violated, or on
// an adaptively scheduled background cadence.
//
// # Quick start
//
//	all := []idea.NodeID{1, 2, 3, 4}
//	cluster := idea.NewEmulatedCluster(idea.EmulatedClusterConfig{Seed: 1, Nodes: all})
//	for _, n := range cluster.Nodes() {
//		n.SetHint("board", 0.95) // keep the board 95% consistent
//	}
//	...
//
// See examples/ for complete programs and internal/experiments for the
// code that regenerates every table and figure of the paper.
package idea

import (
	"log"
	"net/http"
	"time"

	"idea/internal/core"
	"idea/internal/detect"
	"idea/internal/env"
	"idea/internal/gossip"
	"idea/internal/health"
	"idea/internal/id"
	"idea/internal/membership"
	"idea/internal/overlay"
	"idea/internal/quantify"
	"idea/internal/ransub"
	"idea/internal/resolve"
	"idea/internal/simnet"
	"idea/internal/store"
	"idea/internal/telemetry"
	"idea/internal/tracing"
	"idea/internal/transport"
	"idea/internal/vv"
	"idea/internal/wire"
)

// Core identifiers and data types.
type (
	// NodeID identifies a replica/participant.
	NodeID = id.NodeID
	// FileID names a shared file/object; each has its own top layer.
	FileID = id.FileID
	// Priority ranks users for priority-based resolution.
	Priority = id.Priority
	// Update is one write operation on a shared file.
	Update = wire.Update
	// Vector is the extended version vector of Fig. 5.
	Vector = vv.Vector
	// Triple is the <numerical, order, staleness> error of §4.4.
	Triple = vv.Triple
	// Weights weighs the triple members in Formula 1.
	Weights = quantify.Weights
	// Maxima are the per-metric maximum errors of Formula 1.
	Maxima = quantify.Maxima
)

// Node is one IDEA middleware instance (the paper's per-node deployment
// of Fig. 1). It exposes the Table 1 developer API (SetConsistencyMetric,
// SetWeight, SetResolution, SetHint, DemandActiveResolution,
// SetBackgroundFreq) and the end-user interaction surface (Complain).
type Node = core.Node

// Options configures a Node.
type Options = core.Options

// Mode is the per-file adaptive scheme of §4.6.
type Mode = core.Mode

// The adaptive schemes.
const (
	OnDemand       = core.OnDemand
	HintBased      = core.HintBased
	FullyAutomatic = core.FullyAutomatic
)

// AutoController drives fully-automatic background-resolution frequency
// (Formula 4 plus learned undersell/oversell bounds).
type AutoController = core.AutoController

// Alert is a bottom-layer discrepancy notification (§4.4.2).
type Alert = core.Alert

// Resolution policies (§4.5.1), usable with Node.SetResolution.
const (
	InvalidateBoth = int(resolve.InvalidateBoth)
	HighestID      = int(resolve.HighestID)
	PriorityBased  = int(resolve.PriorityBased)
	MergeAll       = int(resolve.MergeAll)
)

// DetectResult is one completed detect(update) verdict.
type DetectResult = detect.Result

// MembershipConfig tunes the SWIM-style failure detector (probe interval,
// suspect/confirm timeouts, indirect-probe fan-out).
type MembershipConfig = membership.Config

// MemberRecord is one entry of a node's live membership view.
type MemberRecord = membership.Record

// Env is the runtime handle protocol callbacks receive; application
// drivers obtain one via EmulatedCluster.Call or LiveNode.Inject.
type Env = env.Env

// ---- Telemetry ----

// MetricsRegistry is a node's named metrics collection; every node owns
// one (Node.Metrics) and all subsystems — detection, resolution, gossip,
// replica store, live transport — record into it.
type MetricsRegistry = telemetry.Registry

// MetricsSnapshot is the JSON-friendly export of a registry, as served
// on /metrics by the admin endpoint.
type MetricsSnapshot = telemetry.Snapshot

// ServeMetrics starts an admin HTTP listener on addr serving the
// registry's snapshot on /metrics (JSON, or Prometheus text with
// ?format=prom), a liveness probe on /healthz, and pprof profiles on
// /debug/pprof/. Close the returned server to stop it.
func ServeMetrics(addr string, reg *MetricsRegistry) (*telemetry.AdminServer, error) {
	return telemetry.ServeAdmin(addr, reg)
}

// ---- Tracing ----

// TracingConfig enables sampled causal tracing on a node (see
// internal/tracing): one write in every SampleEvery mints a trace that
// follows the op through detection, gossip, and resolution, with each
// hop journaled per node. The zero value disables tracing.
type TracingConfig = tracing.Config

// Tracer is a node's causal tracer handle (Node.Tracer; nil when
// tracing is disabled).
type Tracer = tracing.Tracer

// TraceDump is one node's exported span journal, as served on /trace
// and consumed by cmd/idea-trace.
type TraceDump = tracing.Dump

// ---- Health ----

// HealthConfig tunes the per-node health engine (internal/health):
// rule-based anomaly detectors evaluated on the node's own clock, plus
// the always-on flight recorder of recent protocol events. The zero
// value enables evaluation with package defaults.
type HealthConfig = health.Config

// HealthEngine is a node's health engine handle (Node.Health; never
// nil — Enabled reports whether evaluation ticks run).
type HealthEngine = health.Engine

// HealthStatus is the engine's introspection export, as served on
// /health and consumed by cmd/idea-top.
type HealthStatus = health.Status

// FlightRecorder is the always-on bounded ring of recent protocol
// events (Node.Flight), dumped on anomalies, /debug/flight, and SIGQUIT.
type FlightRecorder = health.Recorder

// FlightDump is one node's exported flight-recorder ring.
type FlightDump = health.FlightDump

// FlightDumpOf exports a node's flight-recorder ring — the payload
// served on /debug/flight, dumped on SIGQUIT, and collected per node by
// the soak harness.
func FlightDumpOf(n *Node) FlightDump { return health.DumpOf(n.ID(), n.Flight()) }

// ServeNodeAdmin starts the full admin surface for a node: everything
// ServeMetrics serves, plus the node's span journal on /trace
// (filterable with ?trace= and ?file=), its health verdict on /health
// (POST ?ack=<detector> acknowledges an active anomaly), and the flight
// recorder on /debug/flight. The default /healthz liveness probe is
// replaced by one wired to the health engine: a critical verdict turns
// it into a 503. Close the returned server to stop it.
func ServeNodeAdmin(addr string, n *Node) (*telemetry.AdminServer, error) {
	return telemetry.ServeAdminWith(addr, n.Metrics(), map[string]http.Handler{
		"/trace":        tracing.Handler(n.Tracer()),
		"/health":       health.Handler(n.Health()),
		"/debug/flight": health.FlightHandler(n.ID(), n.Flight()),
		"/healthz":      health.LivenessHandler(n.Health()),
	})
}

// NewNode constructs a bare IDEA node; most callers use
// NewEmulatedCluster or NewLiveNode instead.
func NewNode(self NodeID, opts Options) *Node { return core.NewNode(self, opts) }

// ---- Emulated deployment (the PlanetLab substitute) ----

// EmulatedClusterConfig configures an in-process WAN-emulated cluster.
type EmulatedClusterConfig struct {
	// Seed makes the run deterministic.
	Seed int64
	// Nodes lists every participant.
	Nodes []NodeID
	// Shards partitions each node's state into per-file serialization
	// domains (see core.Options.Shards). The emulator stays
	// deterministic: shards are logical, scheduled by a seeded stable
	// tie-break. Zero means 1 — the classic single-loop node.
	Shards int
	// TopLayers optionally pins the per-file top layers; when nil the
	// RanSub temperature overlay elects them dynamically.
	TopLayers map[FileID][]NodeID
	// MeanRTT sets the emulated WAN round trip; zero means ~105 ms
	// (the paper's PlanetLab testbed scale).
	MeanRTT time.Duration
	// Loss is the message-drop probability.
	Loss float64
	// GossipEvery sets the bottom-layer sweep period; zero means 10 s.
	GossipEvery time.Duration
	// DisableGossip turns the bottom layer off (as in the paper's §6).
	DisableGossip bool
	// Tracing enables sampled causal tracing on every node. Sampling is
	// a deterministic per-node write counter, so traced emulations stay
	// reproducible.
	Tracing TracingConfig
	// Health tunes the per-node health engine. The zero value enables it
	// with defaults; health ticks ride the virtual clock, send no
	// messages, and draw no randomness, so emulated runs stay fully
	// deterministic seed for seed.
	Health HealthConfig
}

// EmulatedCluster is a deterministic in-process IDEA deployment under
// virtual time.
type EmulatedCluster struct {
	sim   *simnet.Cluster
	nodes map[NodeID]*Node
	ids   []NodeID
}

// NewEmulatedCluster builds and starts an emulated deployment.
func NewEmulatedCluster(cfg EmulatedClusterConfig) *EmulatedCluster {
	var lat simnet.LatencyModel
	if cfg.MeanRTT > 0 {
		lat = simnet.WAN{Median: cfg.MeanRTT / 2}
	}
	sim := simnet.New(simnet.Config{Seed: cfg.Seed, Latency: lat, Loss: cfg.Loss})
	ec := &EmulatedCluster{sim: sim, nodes: make(map[NodeID]*Node), ids: append([]NodeID(nil), cfg.Nodes...)}
	var mem overlay.Membership
	if cfg.TopLayers != nil {
		mem = overlay.NewStatic(cfg.Nodes, cfg.TopLayers)
	}
	for _, nid := range cfg.Nodes {
		opts := Options{
			Membership:    mem,
			All:           cfg.Nodes,
			Shards:        cfg.Shards,
			DisableGossip: cfg.DisableGossip,
			DisableRansub: cfg.TopLayers != nil,
			Gossip:        gossip.Config{Interval: cfg.GossipEvery},
			Ransub:        ransub.Config{},
			Tracing:       cfg.Tracing,
			Health:        cfg.Health,
		}
		n := core.NewNode(nid, opts)
		ec.nodes[nid] = n
		sim.Add(nid, n)
	}
	sim.Start()
	return ec
}

// Node returns the node with the given ID.
func (ec *EmulatedCluster) Node(nid NodeID) *Node { return ec.nodes[nid] }

// Nodes returns every node in ID order.
func (ec *EmulatedCluster) Nodes() []*Node {
	out := make([]*Node, 0, len(ec.ids))
	for _, nid := range ec.sim.Nodes() {
		out = append(out, ec.nodes[nid])
	}
	return out
}

// Call schedules fn inside node nid's shard-0 event loop at the given
// virtual offset from now — the way applications issue node-global
// actions. With Shards > 1, per-file operations must use CallFile so they
// run in the file's serialization domain.
func (ec *EmulatedCluster) Call(after time.Duration, nid NodeID, fn func(Env)) {
	ec.sim.CallAt(ec.sim.Elapsed()+after, nid, func(e env.Env) { fn(e) })
}

// CallFile schedules fn inside the serialization domain owning file on
// node nid — the injection point for writes and user actions against one
// file.
func (ec *EmulatedCluster) CallFile(after time.Duration, nid NodeID, file FileID, fn func(Env)) {
	ec.sim.CallAtFile(ec.sim.Elapsed()+after, nid, file, func(e env.Env) { fn(e) })
}

// Run advances virtual time by d, delivering every due message and timer.
func (ec *EmulatedCluster) Run(d time.Duration) { ec.sim.RunFor(d) }

// Elapsed returns total virtual time.
func (ec *EmulatedCluster) Elapsed() time.Duration { return ec.sim.Elapsed() }

// Messages returns the total protocol messages sent so far (the paper's
// overhead metric).
func (ec *EmulatedCluster) Messages() int { return ec.sim.Stats().Total() }

// MessageBytes returns total protocol bytes sent so far.
func (ec *EmulatedCluster) MessageBytes() int { return ec.sim.Stats().Bytes() }

// Partition cuts connectivity between two nodes; Heal restores it.
func (ec *EmulatedCluster) Partition(a, b NodeID) { ec.sim.Partition(a, b) }

// Heal restores connectivity between two nodes.
func (ec *EmulatedCluster) Heal(a, b NodeID) { ec.sim.Heal(a, b) }

// ---- Live deployment (real TCP) ----

// LiveNodeConfig configures a live TCP node.
type LiveNodeConfig struct {
	Self   NodeID
	Listen string // e.g. "127.0.0.1:0"
	// Peers maps every other node to its address; more can be added
	// later with AddPeer.
	Peers map[NodeID]string
	// All lists every node in the deployment (self included).
	All []NodeID
	// TopLayers optionally pins per-file top layers (nil → RanSub).
	TopLayers map[FileID][]NodeID
	// Shards is the number of per-file serialization domains — and live
	// executor goroutines — the node runs (see core.Options.Shards).
	// Zero means one per available CPU; set 1 to force the classic
	// single event loop.
	Shards int
	// CompactLogs enables log compaction below the gossip-learned
	// stability frontier (see core.Options.CompactStableLogs): bounded
	// per-file memory, at the cost of reads only serving the live log
	// suffix. Leave off for apps that replay the log as file content.
	CompactLogs bool
	// Swim enables dynamic membership: SWIM-style failure detection
	// evicts dead peers from every layer (and tears down their transport
	// links), and joiners are admitted at runtime. Implied by Join.
	Swim bool
	// SwimConfig optionally tunes the failure detector (probe interval,
	// suspect timeout, ...); nil uses defaults. Join/SelfAddr/Addrs are
	// filled in by NewLiveNode.
	SwimConfig *membership.Config
	// Join is a seed node's address: the node starts knowing nobody,
	// fetches the member list from the seed, announces itself, and
	// bootstraps its store via snapshot transfer. All/Peers/TopLayers
	// may be left empty.
	Join string
	// ShardQueue/SendQueue size the transport's per-shard inbound event
	// queues and per-peer outbound frame queues (0 = defaults). Inbound
	// buffering is per serialization domain, so total capacity — and
	// backpressure — scales with Shards.
	ShardQueue int
	SendQueue  int
	// Tracing enables sampled causal tracing (journal served on /trace
	// when the admin endpoint is up; zero disables).
	Tracing TracingConfig
	// Health tunes the health engine (served on /health when the admin
	// endpoint is up). The zero value enables it with defaults.
	Health HealthConfig
	// WalDir enables the durability journal: replica updates are written
	// to per-file logs under this directory, replayed on restart, and
	// fsynced periodically (see core.Options.Journal). Empty keeps the
	// store memory-only.
	WalDir string
	// WalGroupCommit is how many journal records may accumulate before
	// being pushed to the OS (see store.WAL.SetGroupCommit). Zero means
	// 8 — the benchmarked default; set 1 to flush every append.
	WalGroupCommit int
	// Logger receives transport diagnostics (nil = silent).
	Logger *log.Logger
}

// LiveNode is an IDEA node running over real TCP: the same protocol code
// as the emulation, behind sockets.
type LiveNode struct {
	N  *Node
	tn *transport.Node
}

// NewLiveNode builds and starts a live node.
func NewLiveNode(cfg LiveNodeConfig) (*LiveNode, error) {
	var mem overlay.Membership
	if cfg.TopLayers != nil {
		mem = overlay.NewStatic(cfg.All, cfg.TopLayers)
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = core.NumShardsAuto
	}
	opts := Options{
		Membership:        mem,
		All:               cfg.All,
		Shards:            shards,
		DisableRansub:     cfg.TopLayers != nil,
		CompactStableLogs: cfg.CompactLogs,
		Tracing:           cfg.Tracing,
		Health:            cfg.Health,
	}
	if cfg.WalDir != "" {
		wal, err := store.OpenWAL(cfg.WalDir)
		if err != nil {
			return nil, err
		}
		gc := cfg.WalGroupCommit
		if gc == 0 {
			gc = 8
		}
		wal.SetGroupCommit(gc)
		opts.Journal = wal
	}
	if cfg.Swim || cfg.Join != "" {
		sc := membership.Config{}
		if cfg.SwimConfig != nil {
			sc = *cfg.SwimConfig
		}
		sc.Addrs = cfg.Peers
		if cfg.Join != "" {
			// The seed's ID is unknown until it answers; JoinRequests go
			// to the reserved alias, which the transport resolves to the
			// configured address.
			sc.Join = membership.SeedAlias
		}
		opts.Swim = &sc
	}
	n := core.NewNode(cfg.Self, opts)
	tn, err := transport.ListenOpts(cfg.Self, cfg.Listen, n, cfg.Logger,
		transport.Opts{ShardQueue: cfg.ShardQueue, SendQueue: cfg.SendQueue})
	if err != nil {
		return nil, err
	}
	tn.AttachMetrics(n.Metrics())
	// Peer-link churn lands in the flight recorder: when an anomaly dumps
	// the ring, connection flaps around the event are right there. (A live
	// node may read the wall clock — only simnet-driven protocol code is
	// bound to the virtual one.)
	flight := n.Flight()
	tn.SetPeerEventHook(func(event string, peer NodeID) {
		kind := map[string]string{
			"add":    health.FKPeerAdd,
			"remove": health.FKPeerRemove,
			"up":     health.FKPeerUp,
			"down":   health.FKPeerDown,
		}[event]
		if kind != "" {
			flight.Record(time.Now(), kind, "", peer, 0, "")
		}
	})
	for nid, addr := range cfg.Peers {
		tn.AddPeer(nid, addr)
	}
	if opts.Swim != nil {
		// The listener is bound: the agent can now advertise a dialable
		// address, and membership events drive the transport's peer
		// table — a learned address becomes dialable before any reply
		// flows, and a confirmed-dead peer's redial loop is torn down.
		n.SetAdvertiseAddr(tn.Addr())
		if cfg.Join != "" {
			tn.AddPeer(membership.SeedAlias, cfg.Join)
			// Once the seed's real identity is known the alias link has
			// served its purpose; retiring it also stops it from
			// redialing the seed's old address forever if the seed later
			// dies.
			n.SetOnJoined(func(Env, NodeID) { tn.RemovePeer(membership.SeedAlias) })
		}
		n.SetOnMember(func(_ Env, ev membership.Event) {
			switch {
			case ev.Status == membership.Dead:
				tn.RemovePeer(ev.Node)
			case ev.Addr != "" && ev.Node != cfg.Self:
				tn.AddPeer(ev.Node, ev.Addr)
			}
		})
		// A probe from a node this one declared dead (whose link was
		// therefore torn down) re-registers its address so the reply —
		// and the record it needs to refute — can be delivered.
		n.SwimAgent().OnContact(func(_ Env, nid NodeID, addr string) {
			tn.AddPeer(nid, addr)
		})
	}
	tn.Start()
	return &LiveNode{N: n, tn: tn}, nil
}

// Addr returns the bound listen address.
func (ln *LiveNode) Addr() string { return ln.tn.Addr() }

// Metrics returns the node's telemetry registry (transport included).
func (ln *LiveNode) Metrics() *MetricsRegistry { return ln.N.Metrics() }

// AddPeer registers a peer address.
func (ln *LiveNode) AddPeer(nid NodeID, addr string) { ln.tn.AddPeer(nid, addr) }

// Inject runs fn inside the node's shard-0 event loop (serialized with
// message handling) — use it for node-global actions. Per-file operations
// (writes, hints, per-file reads) must use InjectFile so they execute in
// the file's serialization domain.
func (ln *LiveNode) Inject(fn func(Env)) { ln.tn.Inject(func(e env.Env) { fn(e) }) }

// InjectFile runs fn inside the event loop of the shard owning file —
// the injection point for writes and user actions against one file.
func (ln *LiveNode) InjectFile(file FileID, fn func(Env)) {
	ln.tn.InjectFile(file, func(e env.Env) { fn(e) })
}

// NumShards returns how many serialization domains (live executors) the
// node runs.
func (ln *LiveNode) NumShards() int { return ln.tn.NumShards() }

// Members returns the node's live membership view (nil without Swim/Join):
// every known node with its believed status and incarnation.
func (ln *LiveNode) Members() []MemberRecord {
	if a := ln.N.SwimAgent(); a != nil {
		return a.Members()
	}
	return nil
}

// JoinCatchup reports how long the snapshot bootstrap took; ok is false
// while it is still running or when the node did not join via a seed.
func (ln *LiveNode) JoinCatchup() (time.Duration, bool) { return ln.N.JoinCatchup() }

// Leave announces voluntary departure to the cluster (dynamic membership
// only; a no-op otherwise) and waits — bounded by timeout — for the
// announcement to be issued, leaving a short flush window for the frames.
// Call it before Close for a graceful shutdown.
func (ln *LiveNode) Leave(timeout time.Duration) {
	done := make(chan struct{})
	ln.tn.Inject(func(e env.Env) {
		ln.N.Leave(e)
		close(done)
	})
	select {
	case <-done:
		// The leave frames sit in per-peer queues; give the writers a
		// moment before the caller tears the sockets down.
		time.Sleep(50 * time.Millisecond)
	case <-time.After(timeout):
	}
}

// Close shuts the node down.
func (ln *LiveNode) Close() error { return ln.tn.Close() }
