package idea_test

import (
	"testing"
	"time"

	"idea"
)

const board = idea.FileID("board")

func newCluster(t *testing.T, n int, pinTop bool) *idea.EmulatedCluster {
	t.Helper()
	nodes := make([]idea.NodeID, n)
	for i := range nodes {
		nodes[i] = idea.NodeID(i + 1)
	}
	cfg := idea.EmulatedClusterConfig{
		Seed:          7,
		Nodes:         nodes,
		DisableGossip: true,
	}
	if pinTop {
		cfg.TopLayers = map[idea.FileID][]idea.NodeID{board: nodes}
	}
	return idea.NewEmulatedCluster(cfg)
}

func TestFacadeEndToEnd(t *testing.T) {
	cl := newCluster(t, 4, true)
	for _, n := range cl.Nodes() {
		if err := n.SetHint(board, 0.95); err != nil {
			t.Fatal(err)
		}
		if err := n.SetResolution(idea.MergeAll); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 6; round++ {
		for nid := idea.NodeID(1); nid <= 4; nid++ {
			nid := nid
			cl.Call(0, nid, func(e idea.Env) {
				cl.Node(nid).Write(e, board, "draw", []byte("x"), 0)
			})
		}
		cl.Run(5 * time.Second)
	}
	cl.Run(10 * time.Second)
	// Hint-based control kept things together; after a final demand all
	// replicas converge on the union (merge-all).
	cl.Call(0, 1, func(e idea.Env) { cl.Node(1).DemandActiveResolution(e, board) })
	cl.Run(5 * time.Second)
	want := len(cl.Node(1).Read(board))
	if want != 24 {
		t.Fatalf("merged log = %d updates, want 24", want)
	}
	for nid := idea.NodeID(2); nid <= 4; nid++ {
		if got := len(cl.Node(nid).Read(board)); got != want {
			t.Fatalf("node %v holds %d, want %d", nid, got, want)
		}
	}
	if cl.Messages() == 0 || cl.MessageBytes() == 0 {
		t.Fatal("no overhead recorded")
	}
}

func TestFacadeDynamicOverlay(t *testing.T) {
	// No pinned top layers: RanSub elects the writers dynamically.
	cl := newCluster(t, 8, false)
	for round := 0; round < 20; round++ {
		for _, nid := range []idea.NodeID{2, 5} {
			nid := nid
			cl.Call(0, nid, func(e idea.Env) {
				cl.Node(nid).Write(e, board, "draw", []byte("y"), 0)
			})
		}
		cl.Run(5 * time.Second)
	}
	top := cl.Node(2).Membership().Top(board)
	if len(top) != 2 || top[0] != 2 || top[1] != 5 {
		t.Fatalf("elected top layer = %v, want [2 5]", top)
	}
}

func TestFacadePartitionHeal(t *testing.T) {
	cl := newCluster(t, 2, true)
	cl.Partition(1, 2)
	cl.Call(0, 1, func(e idea.Env) { cl.Node(1).Write(e, board, "w", []byte("a"), 0) })
	cl.Run(5 * time.Second)
	if got := len(cl.Node(2).Read(board)); got != 0 {
		t.Fatalf("update crossed partition: %d", got)
	}
	cl.Heal(1, 2)
	cl.Call(0, 1, func(e idea.Env) { cl.Node(1).DemandActiveResolution(e, board) })
	cl.Run(5 * time.Second)
	if got := len(cl.Node(2).Read(board)); got != 1 {
		t.Fatalf("node 2 holds %d after heal+resolve, want 1", got)
	}
}

func TestFacadeLiveTCP(t *testing.T) {
	all := []idea.NodeID{1, 2}
	top := map[idea.FileID][]idea.NodeID{board: all}
	n1, err := idea.NewLiveNode(idea.LiveNodeConfig{
		Self: 1, Listen: "127.0.0.1:0", Peers: map[idea.NodeID]string{}, All: all, TopLayers: top,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := idea.NewLiveNode(idea.LiveNodeConfig{
		Self: 2, Listen: "127.0.0.1:0", Peers: map[idea.NodeID]string{1: n1.Addr()}, All: all, TopLayers: top,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n1.AddPeer(2, n2.Addr())

	done := make(chan idea.Update, 1)
	n1.Inject(func(e idea.Env) {
		done <- n1.N.Write(e, board, "text", []byte("over tcp"), 0)
	})
	u := <-done
	// Resolve from node 2 so its replica pulls the update.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		got := make(chan int, 1)
		n2.Inject(func(e idea.Env) {
			n2.N.DemandActiveResolution(e, board)
			got <- len(n2.N.Read(board))
		})
		if <-got == 1 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("update %s never reached node 2 over TCP", u.Key())
}
