package idea_test

// The live dynamic-membership acceptance test: against a real-TCP 3-node
// cluster under load, a 4th node started with nothing but a seed address
// joins, snapshot-bootstraps, and converges to vector-equal store state;
// and a killed node is confirmed dead, evicted from every layer, and its
// transport link torn down. Runs under -race in CI.

import (
	"testing"
	"time"

	"idea"
	"idea/internal/id"
	"idea/internal/loadgen"
	"idea/internal/membership"
	"idea/internal/vv"
)

const liveFile = idea.FileID("f")

// fastSwim keeps the failure-detection cycle short enough for a test:
// probe 150 ms, direct+indirect timeouts 2×75 ms, confirm 450 ms.
func fastSwim() *idea.MembershipConfig {
	return &idea.MembershipConfig{
		ProbeInterval:  150 * time.Millisecond,
		ProbeTimeout:   75 * time.Millisecond,
		SuspectTimeout: 450 * time.Millisecond,
		JoinRetry:      300 * time.Millisecond,
	}
}

// vectorOf reads the file's vector inside its serialization domain.
func vectorOf(ln *idea.LiveNode) *vv.Vector {
	ch := make(chan *vv.Vector, 1)
	ln.InjectFile(liveFile, func(e idea.Env) {
		ch <- ln.N.Store().Open(liveFile).Vector()
	})
	return <-ch
}

func TestLiveJoinConvergesAndDeadNodeEvicted(t *testing.T) {
	all := []idea.NodeID{1, 2, 3}
	nodes := make(map[idea.NodeID]*idea.LiveNode)
	addrs := make(map[idea.NodeID]string)
	for _, nid := range all {
		ln, err := idea.NewLiveNode(idea.LiveNodeConfig{
			Self:       nid,
			Listen:     "127.0.0.1:0",
			All:        all,
			TopLayers:  map[idea.FileID][]idea.NodeID{liveFile: all},
			Shards:     2,
			Swim:       true,
			SwimConfig: fastSwim(),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[nid] = ln
		addrs[nid] = ln.Addr()
		defer ln.Close()
	}
	for _, nid := range all {
		for _, peer := range all {
			if nid != peer {
				nodes[nid].AddPeer(peer, addrs[peer])
			}
		}
	}

	// Drive load at the seed while the 4th node joins mid-run.
	loadDone := make(chan *loadgen.Report, 1)
	go func() {
		loadDone <- loadgen.RunLive(loadgen.Config{
			Seed:     1,
			Duration: 2500 * time.Millisecond,
			Rate:     150,
			Files:    []id.FileID{id.FileID(liveFile)},
		}, nodes[1].N, nodes[1], nil)
	}()

	time.Sleep(400 * time.Millisecond)
	joiner, err := idea.NewLiveNode(idea.LiveNodeConfig{
		Self:       4,
		Listen:     "127.0.0.1:0",
		Join:       addrs[1], // the only configuration the joiner gets
		SwimConfig: fastSwim(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()

	// The snapshot bootstrap must complete while the cluster is loaded.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := joiner.JoinCatchup(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("join bootstrap never completed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	catchup, _ := joiner.JoinCatchup()
	t.Logf("join catch-up took %v", catchup)

	rep := <-loadDone
	if rep.Ops == 0 {
		t.Fatal("load produced no ops; cluster broken")
	}

	// Convergence: the joiner resolves (its top layer falls back to the
	// whole alive view) until its vector equals the seed's.
	deadline = time.Now().Add(15 * time.Second)
	for {
		joiner.InjectFile(liveFile, func(e idea.Env) {
			joiner.N.DemandActiveResolution(e, liveFile)
		})
		time.Sleep(300 * time.Millisecond)
		v1, v4 := vectorOf(nodes[1]), vectorOf(joiner)
		if vv.Compare(v4, v1) == vv.Equal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joiner never converged: seed %v vs joiner %v", v1, v4)
		}
	}

	// All four nodes see each other alive.
	for _, nid := range all {
		waitStatus(t, nodes[nid], 4, membership.Alive, 5*time.Second)
	}
	waitStatus(t, joiner, 3, membership.Alive, 5*time.Second)

	// Kill node 3 without a leave: the survivors must confirm it dead
	// within the suspect+confirm window and evict it from every layer.
	nodes[3].Close()
	killAt := time.Now()
	waitStatus(t, nodes[1], 3, membership.Dead, 10*time.Second)
	waitStatus(t, joiner, 3, membership.Dead, 10*time.Second)
	t.Logf("death confirmed %v after kill", time.Since(killAt))

	view := nodes[1].N.View()
	if view.Contains(3) {
		t.Error("dead node still in node 1's bottom layer")
	}
	if nodes[1].N.Membership().IsTop(liveFile, 3) {
		t.Error("dead node still in node 1's top layer")
	}
	found := false
	for _, n := range nodes[1].N.Membership().Top(liveFile) {
		if n == 3 {
			found = true
		}
	}
	if found {
		t.Error("dead node listed in Top()")
	}
}

// waitStatus polls a node's membership view for a peer's status.
func waitStatus(t *testing.T, ln *idea.LiveNode, peer idea.NodeID, want membership.Status, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		for _, r := range ln.Members() {
			if r.Node == peer && r.Status == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %v never saw %v as %v (view: %+v)", ln.N.ID(), peer, want, ln.Members())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
