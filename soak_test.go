//go:build soak

package idea_test

// The nightly soak (canary-testing style): a 4-node live TCP cluster with
// dynamic membership runs a mixed workload with scripted member churn for
// SOAK_DURATION (default 3m), then must converge — every surviving node
// vector-equal on every loaded file after a final resolution sweep. The
// run writes its artifacts (per-node metrics snapshots, span journals,
// flight-recorder dumps, the idea-top health timeline, the loadgen
// report with its per-second ops timeline, and a machine-readable
// summary) into SOAK_OUT (default "soak") for CI to upload. Every node
// serves its admin endpoint and a collector samples cluster health the
// way cmd/idea-top does; an unacknowledged critical anomaly still
// active at the final sweep fails the run.
//
//	go test -tags soak -run TestNightlySoak -v -timeout 15m .
//
// The build tag keeps the soak out of the tier-1 suite; only the
// scheduled workflow (and curious humans) runs it.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idea"
	"idea/internal/id"
	"idea/internal/loadgen"
	"idea/internal/telemetry"
	"idea/internal/topview"
	"idea/internal/tracing"
	"idea/internal/vv"
)

// soakTracing samples 1-in-20 writes: thousands of ops over a 3m soak
// yield plenty of complete causal chains without journal pressure.
var soakTracing = idea.TracingConfig{SampleEvery: 20, BufferPerStripe: 8192}

func soakDuration() time.Duration {
	if s := os.Getenv("SOAK_DURATION"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			return d
		}
	}
	return 3 * time.Minute
}

func soakOut(t *testing.T) string {
	dir := os.Getenv("SOAK_OUT")
	if dir == "" {
		dir = "soak"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	return dir
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestNightlySoak(t *testing.T) {
	duration := soakDuration()
	out := soakOut(t)

	all := []idea.NodeID{1, 2, 3, 4}
	files := make([]id.FileID, 8)
	for i := range files {
		files[i] = id.FileID(fmt.Sprintf("soak-%d", i))
	}
	top := map[idea.FileID][]idea.NodeID{}
	for _, f := range files {
		top[idea.FileID(f)] = all
	}

	nodes := make(map[idea.NodeID]*idea.LiveNode)
	addrs := make(map[idea.NodeID]string)
	newNode := func(nid idea.NodeID) *idea.LiveNode {
		ln, err := idea.NewLiveNode(idea.LiveNodeConfig{
			Self:       nid,
			Listen:     "127.0.0.1:0",
			All:        all,
			TopLayers:  top,
			Shards:     2,
			Swim:       true,
			SwimConfig: fastSwim(),
			Tracing:    soakTracing,
			WalDir:     t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return ln
	}
	for _, nid := range all {
		ln := newNode(nid)
		nodes[nid] = ln
		addrs[nid] = ln.Addr()
	}
	defer func() {
		for _, ln := range nodes {
			ln.Close()
		}
	}()
	for _, nid := range all {
		for _, peer := range all {
			if nid != peer {
				nodes[nid].AddPeer(peer, addrs[peer])
			}
		}
	}

	// The admin surface every node ships in production: /metrics, /health,
	// /trace, /debug/flight. A collector goroutine samples the cluster the
	// way cmd/idea-top does and keeps the timeline as a soak artifact.
	// adminMu guards admins against the churn callback swapping the
	// victim's server while the collector lists bases.
	var adminMu sync.Mutex
	admins := make(map[idea.NodeID]*telemetry.AdminServer)
	serveAdmin := func(nid idea.NodeID) error {
		srv, err := idea.ServeNodeAdmin("127.0.0.1:0", nodes[nid].N)
		if err != nil {
			return err
		}
		adminMu.Lock()
		admins[nid] = srv
		adminMu.Unlock()
		return nil
	}
	for _, nid := range all {
		if err := serveAdmin(nid); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		adminMu.Lock()
		defer adminMu.Unlock()
		for _, srv := range admins {
			if srv != nil {
				srv.Close()
			}
		}
	}()
	adminBases := func() []string {
		adminMu.Lock()
		defer adminMu.Unlock()
		bases := make([]string, 0, len(admins))
		for _, nid := range all {
			if srv := admins[nid]; srv != nil {
				bases = append(bases, srv.Addr())
			}
		}
		return bases
	}

	healthClient := &http.Client{Timeout: 5 * time.Second}
	var timelineMu sync.Mutex
	var timeline []topview.ClusterSample
	stopHealth := make(chan struct{})
	var healthDone sync.WaitGroup
	healthDone.Add(1)
	go func() {
		defer healthDone.Done()
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stopHealth:
				return
			case <-tick.C:
				cs := topview.Collect(healthClient, adminBases(), false)
				timelineMu.Lock()
				timeline = append(timeline, cs)
				timelineMu.Unlock()
			}
		}
	}()

	// Scripted churn: node 4 is killed every churn period and rejoins via
	// the seed half a period later — the canary scenario: the cluster
	// must keep serving and re-converge through live joins.
	churnEvery := duration / 8
	if churnEvery < 10*time.Second {
		churnEvery = 10 * time.Second
	}
	victim := idea.NodeID(4)
	var rejoinFailed atomic.Bool
	churn := func(round int) (restart func()) {
		ln := nodes[victim]
		ln.Close()
		adminMu.Lock()
		if srv := admins[victim]; srv != nil {
			srv.Close()
			admins[victim] = nil
		}
		adminMu.Unlock()
		return func() {
			rejoined, err := idea.NewLiveNode(idea.LiveNodeConfig{
				Self:       victim,
				Listen:     "127.0.0.1:0",
				TopLayers:  top,
				Shards:     2,
				SwimConfig: fastSwim(),
				Join:       nodes[1].Addr(),
				Tracing:    soakTracing,
				WalDir:     t.TempDir(),
			})
			if err != nil {
				// InjectFile on the closed node left in nodes[victim]
				// would silently drop callbacks and hang the convergence
				// phase — record the failure and bail out after RunLive.
				t.Logf("soak churn: rejoin failed: %v", err)
				rejoinFailed.Store(true)
				return
			}
			nodes[victim] = rejoined
			if err := serveAdmin(victim); err != nil {
				t.Logf("soak churn: admin restart failed: %v", err)
			}
		}
	}

	rep := loadgen.RunLive(loadgen.Config{
		Seed:       time.Now().UnixNano(),
		Duration:   duration,
		Workers:    8,
		OpTimeout:  5 * time.Second,
		Files:      files,
		ZipfSkew:   1.2,
		Mix:        loadgen.Mix{Write: 16, Read: 4, Hint: 1, Resolve: 1},
		ChurnEvery: churnEvery,
		Churn:      churn,
	}, nodes[1].N, nodes[1], nodes[1].Metrics())
	t.Logf("soak workload:\n%s", rep)
	writeJSON(t, filepath.Join(out, "report.json"), rep)

	if rep.Ops == 0 {
		t.Fatal("soak completed zero operations")
	}
	if rep.Churn == nil || rep.Churn.Rounds < 1 {
		t.Fatalf("soak scripted no churn rounds (churn report %+v)", rep.Churn)
	}
	if rejoinFailed.Load() {
		t.Fatal("soak churn: the killed node failed to rejoin (see log)")
	}

	// Convergence: demand a final resolution sweep from the driver, then
	// every surviving node must reach vector equality on every file.
	// Injected reads are time-bounded: a closed node drops callbacks, and
	// a silent hang here must fail the run, not eat the test timeout.
	vecOf := func(ln *idea.LiveNode, f id.FileID) *vv.Vector {
		ch := make(chan *vv.Vector, 1)
		ln.InjectFile(idea.FileID(f), func(e idea.Env) {
			ch <- ln.N.Store().Open(f).Vector()
		})
		select {
		case v := <-ch:
			return v
		case <-time.After(30 * time.Second):
			t.Fatalf("soak: reading %s's vector timed out (node dead?)", f)
			return nil
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	converged := false
	for !converged {
		for _, f := range files {
			func(f id.FileID) {
				done := make(chan struct{})
				nodes[1].InjectFile(idea.FileID(f), func(e idea.Env) {
					nodes[1].N.DemandActiveResolution(e, f)
					close(done)
				})
				select {
				case <-done:
				case <-time.After(30 * time.Second):
					t.Fatalf("soak: resolution demand for %s timed out", f)
				}
			}(f)
		}
		time.Sleep(2 * time.Second)
		converged = true
	check:
		for _, f := range files {
			want := vecOf(nodes[1], f)
			for _, nid := range all[1:] {
				if vv.Compare(vecOf(nodes[nid], f), want) != vv.Equal {
					converged = false
					break check
				}
			}
		}
		if !converged && time.Now().After(deadline) {
			break
		}
	}

	// Final health sweep: the gate the nightly run enforces. Transient
	// anomalies may raise mid-churn (that history is the timeline's job);
	// what must not survive convergence is an unacknowledged critical —
	// poll briefly so detectors whose clear lags the final frontier
	// advance (health ticks every 2s) get their chance, then judge.
	close(stopHealth)
	healthDone.Wait()
	sweepDeadline := time.Now().Add(30 * time.Second)
	final := topview.Collect(healthClient, adminBases(), false)
	for !final.OK() && time.Now().Before(sweepDeadline) {
		time.Sleep(2 * time.Second)
		final = topview.Collect(healthClient, adminBases(), false)
	}
	timeline = append(timeline, final)
	writeJSON(t, filepath.Join(out, "health-timeline.json"), timeline)

	for _, nid := range all {
		writeJSON(t, filepath.Join(out, fmt.Sprintf("metrics-node%d.json", nid)), nodes[nid].Metrics().Snapshot())
		// Per-node span journals; CI merges them with idea-trace into a
		// cluster-wide causal timeline and uploads it alongside the metrics.
		writeJSON(t, filepath.Join(out, fmt.Sprintf("trace-node%d.json", nid)), tracing.DumpOf(nodes[nid].N.Tracer(), 0, ""))
		// Flight-recorder rings: the unsampled protocol-event tail of every
		// node, the first thing to read when a soak anomaly needs a story.
		writeJSON(t, filepath.Join(out, fmt.Sprintf("flight-node%d.json", nid)), idea.FlightDumpOf(nodes[nid].N))
	}
	writeJSON(t, filepath.Join(out, "summary.json"), map[string]any{
		"converged":        converged,
		"duration_s":       rep.Elapsed.Seconds(),
		"ops":              rep.Ops,
		"ops_per_sec":      rep.OpsPerSec,
		"timeouts":         rep.Timeouts,
		"churn_rounds":     rep.Churn.Rounds,
		"health_verdict":   final.Verdict.String(),
		"health_ok":        final.OK(),
		"unacked_critical": final.UnackedCritical,
		"finished_at":      time.Now().UTC().Format(time.RFC3339),
	})

	if !converged {
		t.Fatal("soak cluster did not converge to vector equality within 60s of load end")
	}
	if !final.OK() {
		t.Fatalf("soak ended with unreachable nodes or unacknowledged critical anomalies: verdict=%s unreachable=%d unacked=%d (see health-timeline.json)",
			final.Verdict, final.Unreachable, final.UnackedCritical)
	}
	t.Logf("soak converged: %d ops at %.1f ops/s over %v with %d churn rounds",
		rep.Ops, rep.OpsPerSec, rep.Elapsed.Round(time.Second), rep.Churn.Rounds)
}
