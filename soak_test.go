//go:build soak

package idea_test

// The nightly soak (canary-testing style) is the scenario-plan harness's
// live path: the churn-kill-rejoin plan — the same named plan the
// deterministic simnet runner replays byte-for-byte in tier-1 — executed
// against a real 4-node TCP cluster for SOAK_DURATION (default 3m).
// plans.RunLive owns the rig: live nodes with dynamic membership and
// journals, per-node admin endpoints, an idea-top-style health collector,
// the scripted kill/rejoin churn, the final resolution sweep, and the
// artifact set (workload report, health timeline, per-node
// metrics/trace/flight dumps) written into SOAK_OUT (default "soak") for
// CI to upload. The plan's assertions — convergence, ops floor, the
// membership-flap expectation, the dip/recovery envelope, the final
// health verdict — are the gate; any failed assertion fails the run.
//
//	go test -tags soak -run TestNightlySoak -v -timeout 15m .
//
// The build tag keeps the soak out of the tier-1 suite; only the
// scheduled workflow (and curious humans) runs it.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"idea/internal/plans"
)

func soakDuration() time.Duration {
	if s := os.Getenv("SOAK_DURATION"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			return d
		}
	}
	return 3 * time.Minute
}

func soakOut(t *testing.T) string {
	dir := os.Getenv("SOAK_OUT")
	if dir == "" {
		dir = "soak"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	return dir
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestNightlySoak(t *testing.T) {
	p := plans.MustGet("churn-kill-rejoin")
	duration := soakDuration()
	out := soakOut(t)

	// A wall-clock seed: live runs make no replay promise, and distinct
	// nightly runs should walk distinct op schedules.
	tl, err := plans.RunLive(p, time.Now().UnixNano(), duration, out)
	if err != nil {
		t.Fatal(err)
	}
	writeJSON(t, filepath.Join(out, "timeline.json"), tl)
	writeJSON(t, filepath.Join(out, "summary.json"), map[string]any{
		"plan":        p.Name,
		"pass":        tl.Pass,
		"duration_s":  float64(tl.DurationMs) / 1000,
		"ops":         tl.Report.Ops,
		"ops_per_sec": tl.Report.OpsPerSec,
		"timeouts":    tl.Report.Timeouts,
		"verdicts":    tl.Verdicts,
		"assertions":  tl.Assertions,
		"finished_at": time.Now().UTC().Format(time.RFC3339),
	})
	t.Logf("soak workload:\n%s", tl.Report)

	for _, a := range tl.Assertions {
		if !a.OK {
			t.Errorf("assertion %s failed: %s", a.Name, a.Detail)
		} else {
			t.Logf("assertion %s ok: %s", a.Name, a.Detail)
		}
	}
	if !tl.Pass {
		t.Fatalf("soak plan %s failed (see %s/timeline.json)", p.Name, out)
	}
	if c := tl.Report.Churn; c != nil {
		t.Logf("soak converged: %d ops at %.1f ops/s with %d churn rounds (dip %.1f, recovery %.1fs)",
			tl.Report.Ops, tl.Report.OpsPerSec, c.Rounds, c.DipOpsPerSec, c.RecoverySeconds)
	}
}
